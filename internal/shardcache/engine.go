// Package shardcache is the concurrent layer over the single-threaded
// simulator: it splits one logical Futility-Scaling cache into independently
// locked domains, each owning its own core.Cache, ranker and
// feedback-controller state, so multiple goroutines can drive the cache at
// once while every invariant the sequential simulator enforces keeps holding
// per domain.
//
// The decomposition has two levels. The cache is first split into S *shards*
// — the unit of the deterministic driving protocol (driver.go) and of the
// global target distributor's demand accounting. Each shard is then split
// into K lock *stripes* over contiguous sub-ranges of the shard's sets, each
// stripe a smaller set-associative array with the same associativity behind
// its own mutex. Striping follows the hardware idiom: the engine hashes an
// address with one H3 function over the *global* set index space and takes
// the top log2(S·K)-bit slice as the stripe index (hashing.ShardOf over S·K
// buckets), so the top log2(S) bits select the shard and the next log2(K)
// bits the stripe within it. An access therefore contends only with accesses
// to the same 1/(S·K) slice of the sets, not the whole shard.
//
// Partition targets stay a cache-wide contract: SetTargets installs global
// per-partition line targets, and Rebalance — the global target distributor
// — periodically collects every stripe's occupancy and access demand and
// re-apportions each partition's global target across stripes proportional
// to observed per-stripe demand. Under skewed load this converges cache-wide
// partition sizes to the paper's targets even though each stripe's feedback
// controller only ever sees its local slice.
//
// The distributor is built so redistribution never blocks the access path
// for more than one bounded counter swap or target install per stripe:
// demand is counted into per-stripe double-buffered counters, Rebalance
// swaps the buffers under the stripe lock (a slice-header exchange), and all
// aggregation, weighting and apportionment run outside every stripe lock on
// the rebalancer's private buffer. Rebalancer (rebalancer.go) runs this on a
// background ticker so serving layers never call it from a request path.
//
// Concurrency contract: Access, AccessBatch (batch.go), SetTargets,
// Rebalance, Snapshot, ShardSnapshots and CheckInvariants are all safe for
// concurrent use. A stripe mutex is only ever held for one bounded cache
// operation (or one batched run of them); the engine never holds two stripe
// locks at once. Determinism under concurrency is a protocol property, not
// an engine property — see driver.go.
package shardcache

import (
	"fmt"
	"sync"

	"fscache/internal/cachearray"
	"fscache/internal/core"
	"fscache/internal/futility"
	"fscache/internal/hashing"
	"fscache/internal/trace"
	"fscache/internal/xrand"
)

// Config assembles a sharded cache.
type Config struct {
	// Lines is the total line count across all shards (power of two).
	Lines int
	// Ways is the associativity of every stripe (power of two).
	Ways int
	// Shards is the shard count (power of two, at most Lines/Ways sets).
	Shards int
	// Stripes is the lock-stripe count per shard (power of two; 0 or 1
	// means one lock per shard, the pre-striping layout). Shards×Stripes
	// must not exceed the set count.
	Stripes int
	// Parts is the number of partitions; targets are cache-wide.
	Parts int
	// Ranking selects the futility ranker each stripe runs (the reference
	// ranker for AEF measurement is derived via futility.Reference).
	Ranking futility.Kind
	// Feedback parameterizes each stripe's FS feedback controller.
	Feedback core.FSFeedbackConfig
	// Seed roots all hash functions and rankers; equal seeds build
	// byte-identical engines.
	Seed uint64
	// HistBuckets sets the eviction-futility histogram resolution
	// (default 64, matching core).
	HistBuckets int
}

// stripe is one independently locked domain: a single-threaded core.Cache
// over a contiguous sub-range of one shard's sets, plus the active demand
// buffer the global distributor swaps out.
type stripe struct {
	mu sync.Mutex
	//fs:guardedby mu
	cache *core.Cache
	// demand counts insertions routed to this stripe per partition since
	// the distributor's last buffer swap; it is the distributor's load
	// signal. Rebalance exchanges it with a zeroed spare buffer (Engine.spare)
	// under mu, so the counters are read and aggregated outside the lock.
	//fs:guardedby mu
	demand []uint64
}

// Engine is the concurrent sharded cache.
//
// Lock order: rmu (the distributor pass) before tmu (the target vector)
// before any stripe.mu. The access path takes only a single stripe.mu;
// rmu and tmu are never held across more than one bounded operation on any
// stripe, and tmu is never held while a stripe lock is acquired (Rebalance
// copies the target vector under tmu, releases it, and only then walks the
// stripes). fslint's lockcheck analyzer enforces both the guard discipline
// and the declared order.
//
//fs:lockorder Engine.rmu Engine.tmu
//fs:lockorder Engine.rmu stripe.mu
//fs:lockorder Engine.tmu stripe.mu
type Engine struct {
	cfg      Config
	sets     int // global set count = Lines/Ways
	perShard int // stripes per shard (cfg.Stripes normalized, ≥1)
	router   *hashing.H3
	stripes  []*stripe // flat, global stripe index g = shard*perShard + stripe

	// tmu guards the cache-wide per-partition goals. It is held only to
	// read or overwrite the vector, never across stripe locks, so target
	// readers are never serialized behind a distribution pass.
	tmu sync.Mutex
	//fs:guardedby tmu
	targets []int

	// rmu serializes distribution passes (SetTargets and Rebalance) and
	// guards their preallocated scratch. A pass holds rmu for its whole
	// duration but only ever takes one stripe lock at a time, for one
	// bounded operation, so a slow stripe delays the distributor — never
	// the access path, and never the other stripes' accessors.
	rmu sync.Mutex
	// spare[g] is the zeroed demand buffer Rebalance swaps into stripe g;
	// after the swap it holds the interval's counters and is read and
	// re-zeroed outside the stripe lock.
	//fs:guardedby rmu
	spare [][]uint64
	// sizeScratch[g] receives stripe g's current per-partition sizes,
	// copied under the stripe lock at swap time.
	//fs:guardedby rmu
	sizeScratch [][]int
	//fs:guardedby rmu
	goalScratch []int // copy of targets taken under tmu
	//fs:guardedby rmu
	weightScratch []float64 // per-stripe weights for one partition
	//fs:guardedby rmu
	shareScratch []int // apportionment output for one partition
	//fs:guardedby rmu
	remScratch []float64 // largest-remainder scratch for one partition
	//fs:guardedby rmu
	perStripe [][]int // [stripe][part] target vectors to install
}

// New builds an engine from cfg. It panics on inconsistent configuration
// (experiment-setup programming errors, matching core.New).
func New(cfg Config) *Engine {
	checkPow2(cfg.Lines, "Lines")
	checkPow2(cfg.Ways, "Ways")
	checkPow2(cfg.Shards, "Shards")
	if cfg.Stripes == 0 {
		cfg.Stripes = 1
	}
	checkPow2(cfg.Stripes, "Stripes")
	if cfg.Parts <= 0 {
		panic("shardcache: Parts must be positive")
	}
	if cfg.Ways > cfg.Lines {
		panic("shardcache: Ways exceed Lines")
	}
	sets := cfg.Lines / cfg.Ways
	nStripes := cfg.Shards * cfg.Stripes
	if nStripes > sets {
		panic("shardcache: more lock stripes than sets")
	}
	stripes := make([]*stripe, nStripes)
	perStripeLines := cfg.Lines / nStripes
	for g := range stripes {
		arr := cachearray.NewSetAssoc(perStripeLines, cfg.Ways, cachearray.IndexH3,
			xrand.Mix64(cfg.Seed^uint64(g+1)))
		ranker := futility.New(cfg.Ranking, perStripeLines, cfg.Parts,
			xrand.Mix64(cfg.Seed^0x5a5a0000^uint64(g)))
		var ref futility.Ranker
		if rk := futility.Reference(cfg.Ranking); rk != cfg.Ranking {
			ref = futility.New(rk, perStripeLines, cfg.Parts,
				xrand.Mix64(cfg.Seed^0x0a0a0000^uint64(g)))
		}
		stripes[g] = &stripe{
			cache: core.New(core.Config{
				Array:       arr,
				Ranker:      ranker,
				Reference:   ref,
				Scheme:      core.NewFSFeedback(cfg.Parts, cfg.Feedback),
				Parts:       cfg.Parts,
				HistBuckets: cfg.HistBuckets,
			}),
			demand: make([]uint64, cfg.Parts),
		}
	}
	spare := make([][]uint64, nStripes)
	sizeScratch := make([][]int, nStripes)
	perStripe := make([][]int, nStripes)
	for g := range spare {
		spare[g] = make([]uint64, cfg.Parts)
		sizeScratch[g] = make([]int, cfg.Parts)
		perStripe[g] = make([]int, cfg.Parts)
	}
	return &Engine{
		cfg:           cfg,
		sets:          sets,
		perShard:      cfg.Stripes,
		router:        hashing.NewH3(cfg.Seed, sets),
		stripes:       stripes,
		targets:       make([]int, cfg.Parts),
		spare:         spare,
		sizeScratch:   sizeScratch,
		perStripe:     perStripe,
		goalScratch:   make([]int, cfg.Parts),
		weightScratch: make([]float64, nStripes),
		shareScratch:  make([]int, nStripes),
		remScratch:    make([]float64, nStripes),
	}
}

func checkPow2(n int, what string) {
	if n <= 0 || n&(n-1) != 0 {
		panic("shardcache: " + what + " must be a positive power of two")
	}
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.stripes) / e.perShard }

// Stripes returns the lock-stripe count per shard.
func (e *Engine) Stripes() int { return e.perShard }

// Parts returns the partition count.
func (e *Engine) Parts() int { return e.cfg.Parts }

// Lines returns the total line count across all shards.
func (e *Engine) Lines() int { return e.cfg.Lines }

// ShardOf returns the shard an address routes to: the top bit-slice of its
// global H3 set index. It is pure and safe to call concurrently. The
// deterministic driving protocol (driver.go) partitions ownership at shard
// granularity, so all of a shard's stripes belong to the shard's owner.
func (e *Engine) ShardOf(addr uint64) int {
	return e.stripeOf(addr) / e.perShard
}

// stripeOf returns the global stripe index for an address: the top
// log2(Shards·Stripes)-bit slice of its H3 set index. Because the slice is
// a prefix, the top log2(Shards) bits are exactly ShardOf.
func (e *Engine) stripeOf(addr uint64) int {
	return int(hashing.ShardOf(e.router.Hash(addr), e.sets, len(e.stripes)))
}

// Access performs one cache access for partition part on the stripe the
// address routes to, holding only that stripe's lock.
//
//fs:allocfree
func (e *Engine) Access(addr uint64, part int) core.AccessResult {
	st := e.stripes[e.stripeOf(addr)]
	st.mu.Lock()
	res := st.cache.Access(addr, part, trace.NoNextUse)
	if !res.Hit {
		// Demand is counted in insertions, not raw accesses: a hit consumes
		// no line, so a hit-dominated stripe needs no extra allocation, while
		// every miss claims a line in this stripe. Weighting the distributor
		// by insertion demand reproduces how lines spread across regions of
		// a monolithic array (lines sit where they are inserted).
		st.demand[part]++
	}
	st.mu.Unlock()
	return res
}

// SetTargets installs cache-wide per-partition line targets and distributes
// them evenly across stripes (Rebalance later re-apportions by demand).
// len(targets) must equal Parts.
func (e *Engine) SetTargets(targets []int) {
	if len(targets) != e.cfg.Parts {
		panic("shardcache: SetTargets length mismatch")
	}
	e.rmu.Lock()
	defer e.rmu.Unlock()
	e.tmu.Lock()
	copy(e.targets, targets)
	copy(e.goalScratch, e.targets)
	e.tmu.Unlock()
	for g := range e.weightScratch {
		e.weightScratch[g] = 1
	}
	e.apportionAll()
	e.applyTargets()
}

// Targets returns a copy of the cache-wide per-partition targets.
func (e *Engine) Targets() []int {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	return append([]int(nil), e.targets...)
}

// Rebalance is the global target distributor: one snapshot-then-apply pass
// that (1) swaps every stripe's demand counters with a zeroed spare buffer
// and copies its current sizes, holding each stripe lock only for that
// exchange, (2) re-apportions each partition's cache-wide target across
// stripes proportional to demand + occupancy outside every lock, and (3)
// installs the new per-stripe targets, again one bounded operation per
// stripe lock. A stripe that saw more of a partition's traffic gets a larger
// slice of that partition's global allocation, so cache-wide partition sizes
// track the paper's targets even when the address hash routes partitions
// unevenly.
//
// tmu is held only to copy the goal vector — never across a stripe lock —
// and concurrent passes serialize on rmu, so a stalled stripe can delay the
// distributor but never a target reader or another stripe's accessors.
//
// The +1 smoothing term keeps every stripe's weight positive, so no
// stripe's target collapses to zero on a quiet interval (which would force
// its local controller to evict the partition entirely and then refill on
// the next interval).
func (e *Engine) Rebalance() {
	e.rmu.Lock()
	defer e.rmu.Unlock()
	e.tmu.Lock()
	copy(e.goalScratch, e.targets)
	e.tmu.Unlock()
	// Collect: per stripe, one bounded critical section that exchanges the
	// demand buffer for a zeroed spare and copies the current sizes.
	for g, st := range e.stripes {
		buf := e.spare[g]
		sizes := e.sizeScratch[g]
		st.mu.Lock()
		st.demand, buf = buf, st.demand
		copy(sizes, st.cache.Sizes())
		st.mu.Unlock()
		e.spare[g] = buf
	}
	// Weigh and apportion outside every stripe lock.
	nP := e.cfg.Parts
	for p := 0; p < nP; p++ {
		for g := range e.stripes {
			e.weightScratch[g] = float64(e.spare[g][p]) + float64(e.sizeScratch[g][p]) + 1
		}
		e.apportionPart(p)
	}
	// The spare buffers must be zero before the next swap hands them to a
	// stripe as fresh counters.
	for g := range e.spare {
		for p := range e.spare[g] {
			e.spare[g][p] = 0
		}
	}
	e.applyTargets()
}

// apportionAll splits every partition's goal across stripes with the
// current weightScratch (callers hold rmu).
//
//fs:callerholds rmu
func (e *Engine) apportionAll() {
	for p := 0; p < e.cfg.Parts; p++ {
		e.apportionPart(p)
	}
}

// apportionPart fills perStripe[*][p] from goalScratch[p] and weightScratch
// (callers hold rmu).
//
//fs:callerholds rmu
func (e *Engine) apportionPart(p int) {
	apportionInto(e.goalScratch[p], e.weightScratch, e.shareScratch, e.remScratch)
	for g := range e.stripes {
		e.perStripe[g][p] = e.shareScratch[g]
	}
}

// applyTargets installs the perStripe target vectors, taking each stripe
// lock in turn for exactly one SetTargets call. Callers hold rmu.
//
//fs:callerholds rmu
func (e *Engine) applyTargets() {
	for g, st := range e.stripes {
		tv := e.perStripe[g]
		st.mu.Lock()
		st.cache.SetTargets(tv)
		st.mu.Unlock()
	}
}

// apportion splits total into integer shares proportional to weights using
// largest-remainder rounding: shares sum exactly to total, and the result
// is a deterministic function of (total, weights) with ties broken by the
// lowest index. Weights must be non-negative with a positive sum.
func apportion(total int, weights []float64) []int {
	shares := make([]int, len(weights))
	rems := make([]float64, len(weights))
	apportionInto(total, weights, shares, rems)
	return shares
}

// apportionInto is apportion with caller-owned output buffers (the
// distributor's allocation-free form). len(shares) and len(rems) must equal
// len(weights).
func apportionInto(total int, weights []float64, shares []int, rems []float64) {
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("shardcache: negative apportionment weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("shardcache: apportionment weights sum to zero")
	}
	used := 0
	for i, w := range weights {
		exact := float64(total) * (w / sum)
		shares[i] = int(exact)
		rems[i] = exact - float64(shares[i])
		used += shares[i]
	}
	for used < total {
		best := -1
		bestRem := -1.0
		for i, r := range rems {
			if r > bestRem {
				bestRem = r
				best = i
			}
		}
		shares[best]++
		rems[best] = -2 // consumed; lowest index wins remaining ties
		used++
	}
}

// Snapshot returns the cache-wide measurement state: every stripe's
// StatsSnapshot (taken one stripe lock at a time, in stripe index order)
// merged into one core.Snapshot. Counters, histograms and Size/Target
// columns add into cache-wide totals. Note that the merged
// Snapshot.MeanOccupancy is a per-access average over stripe-local samples
// (each stripe only samples its own slice), so it reports the loaded-stripe
// average, not the cache-wide resident total; use Engine.MeanOccupancy for
// the cache-wide per-partition occupancy.
func (e *Engine) Snapshot() core.Snapshot {
	var merged core.Snapshot
	for g, st := range e.stripes {
		st.mu.Lock()
		snap := st.cache.StatsSnapshot()
		st.mu.Unlock()
		if g == 0 {
			merged = snap
		} else {
			merged.Merge(snap)
		}
	}
	return merged
}

// MeanOccupancy returns the cache-wide time-averaged resident line count of
// a partition: the sum over stripes of each stripe's mean occupancy (each
// sampled at that stripe's own accesses). Comparable to the monolithic
// core.Cache.MeanOccupancy.
func (e *Engine) MeanOccupancy(part int) float64 {
	total := 0.0
	for _, st := range e.stripes {
		st.mu.Lock()
		snap := st.cache.StatsSnapshot()
		st.mu.Unlock()
		total += snap.MeanOccupancy(part)
	}
	return total
}

// PartSizes sums each partition's current decision size across stripes into
// dst (allocated when nil or too short) and returns it. Unlike Snapshot it
// copies no histograms, so serving layers can poll it on a stats path
// without deep-copying every stripe's measurement state.
func (e *Engine) PartSizes(dst []int) []int {
	if len(dst) < e.cfg.Parts {
		dst = make([]int, e.cfg.Parts)
	}
	dst = dst[:e.cfg.Parts]
	for i := range dst {
		dst[i] = 0
	}
	for _, st := range e.stripes {
		st.mu.Lock()
		sizes := st.cache.Sizes()
		for p, n := range sizes {
			dst[p] += n
		}
		st.mu.Unlock()
	}
	return dst
}

// ShardSnapshots returns each shard's measurement state in shard index
// order, each shard's stripes merged into one core.Snapshot.
func (e *Engine) ShardSnapshots() []core.Snapshot {
	out := make([]core.Snapshot, e.Shards())
	for g, st := range e.stripes {
		st.mu.Lock()
		snap := st.cache.StatsSnapshot()
		st.mu.Unlock()
		s := g / e.perShard
		if g%e.perShard == 0 {
			out[s] = snap
		} else {
			out[s].Merge(snap)
		}
	}
	return out
}

// CheckInvariants audits every stripe's controller with the sequential
// simulator's full invariant rescan, one stripe lock at a time.
func (e *Engine) CheckInvariants() error {
	for g, st := range e.stripes {
		st.mu.Lock()
		err := st.cache.CheckInvariants()
		st.mu.Unlock()
		if err != nil {
			return fmt.Errorf("stripe %d (shard %d): %w", g, g/e.perShard, err)
		}
	}
	return nil
}
