package shardcache

import (
	"sync"
	"testing"
	"time"

	"fscache/internal/futility"
	"fscache/internal/scenario"
	"fscache/internal/xrand"
)

// churnScenario is a scenario-driven tenant lifecycle: a newcomer appears
// mid-run, an incumbent is destroyed and later re-created. The stream's
// churn ops carry the re-apportioned target vectors the engine must absorb
// live.
const churnScenario = `
name: shardcache-churn
seed: 1337
accesses: 60000
cache:
  lines: 2048
clients:
  - name: anchor
    share: 2
    workload:
      mix:
        - kind: zipf
          lines: 1024
          theta: 1.0
          weight: 1
  - name: commuter
    share: 1
    workload:
      profile: lbm
      shrink: 8
  - name: newcomer
    share: 1
    workload:
      mix:
        - kind: uniform
          lines: 512
          weight: 1
churn:
  - at: 0.25
    client: newcomer
    action: create
  - at: 0.45
    client: commuter
    action: destroy
  - at: 0.7
    client: commuter
    action: create
`

// TestScenarioTenantChurn is the tenant-churn regression test for the
// sharded engine: a compiled scenario stream drives churn (SetTargets with
// re-apportioned vectors, including a zeroed target for the destroyed
// tenant) while free-running workers and the background rebalancer race
// against it, and CheckInvariants must pass after EVERY churn event — not
// just after quiesce — so a conservation bug introduced by retargeting
// mid-traffic is caught at the event that created it. Run under -race in
// CI, this is the concurrent counterpart of the deterministic
// fstables -scenario churn run.
func TestScenarioTenantChurn(t *testing.T) {
	spec, err := scenario.Parse([]byte(churnScenario), "shardcache-churn")
	if err != nil {
		t.Fatalf("parse scenario: %v", err)
	}
	comp, err := scenario.Compile(spec, "")
	if err != nil {
		t.Fatalf("compile scenario: %v", err)
	}
	cfg := Config{
		Lines:   spec.Cache.Lines,
		Ways:    spec.Cache.Ways,
		Shards:  4,
		Stripes: 2,
		Parts:   comp.Parts(),
		Ranking: futility.CoarseLRU,
		Seed:    testSeed ^ 0xc42,
	}
	e := New(cfg)
	e.SetTargets(comp.Targets(cfg.Lines, comp.InitialLive()))

	// Background accessors: each worker runs its own reseeded interleaving
	// of the same compiled stream, skipping churn ops (the main goroutine
	// owns retargeting) — the same division of labor cmd/fsload uses.
	bgWorkers := 3
	accesses := spec.Accesses
	if testing.Short() {
		bgWorkers, accesses = 1, 20000
	}
	var wg sync.WaitGroup
	for w := 0; w < bgWorkers; w++ {
		wg.Add(1)
		//fslint:ignore determinism churn regression test: free-running workers deliberately race the retargeting path; only invariants and race-freedom are asserted
		go func(w int) {
			defer wg.Done()
			st := comp.NewStreamSeeded(cfg.Lines, xrand.Mix64(spec.Seed^uint64(w+2)*0x9e3779b97f4a7c15))
			var op scenario.Op
			for i := 0; i < accesses && st.Next(&op); {
				if op.Kind != scenario.OpAccess {
					continue
				}
				e.Access(xrand.Mix64(op.Access.Addr), op.Part)
				i++
			}
		}(w)
	}
	rb := e.StartRebalancer(200 * time.Microsecond)

	// Foreground: the base stream drives churn. Every churn event must
	// leave the engine internally consistent while traffic keeps flowing.
	st := comp.NewStream(cfg.Lines)
	churns := 0
	var op scenario.Op
	for st.Next(&op) {
		if op.Kind == scenario.OpChurn {
			e.SetTargets(op.Targets)
			churns++
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("invariants violated after churn event %d (%s create=%v): %v",
					churns, op.Client, op.Create, err)
			}
			sum := 0
			for p := 0; p < cfg.Parts; p++ {
				sum += e.Snapshot().Parts[p].Target
			}
			if sum != cfg.Lines {
				t.Fatalf("churn event %d: cache-wide targets sum to %d, want %d", churns, sum, cfg.Lines)
			}
			continue
		}
		e.Access(xrand.Mix64(op.Access.Addr), op.Part)
	}
	wg.Wait()
	rb.Stop()

	if churns != 3 {
		t.Fatalf("stream delivered %d churn events, want 3", churns)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants after quiesce: %v", err)
	}
	if rb.Rebalances() == 0 {
		t.Error("background rebalancer completed no passes during the churn run")
	}
	// The destroyed-then-recreated tenant must hold a live target again and
	// the washed-out newcomer a nonzero one; the final vector is the
	// all-live apportionment.
	final := comp.Targets(cfg.Lines, []bool{true, true, true})
	for p := 0; p < cfg.Parts; p++ {
		if got := e.Snapshot().Parts[p].Target; got != final[p] {
			t.Errorf("final target[%d] = %d, want %d", p, got, final[p])
		}
	}
}
