// Package analytic encodes the paper's analytical framework (§IV): the
// uniformity-assumption model of a cache with R independent, uniformly
// distributed replacement candidates, under Futility Scaling.
//
// Model: each replacement candidate belongs to partition j with probability
// S_j (its size fraction) and has futility f uniform on [0,1]; FS evicts
// the candidate maximizing α_j·f. The scaled futility of a random candidate
// has CDF
//
//	G(y) = Σ_j S_j · min(y/α_j, 1),
//
// and the eviction-rate fraction of partition i is
//
//	E_i(α) = R·S_i/α_i · ∫₀^{α_i} G(y)^{R−1} dy.
//
// A partitioning is stable when E_i = I_i for all i. For two partitions with
// α₁ = 1 this yields the paper's Equation (1):
//
//	α₂ = S₂ / ((I₁/S₁)^{1/(R−1)} − S₁),
//
// valid iff I₁ > S₁^R (the replacement-based partitioning bound: all R
// candidates fall in partition 1 with probability S₁^R, forcing at least
// that eviction share).
package analytic

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible reports a partitioning outside the replacement-based bound:
// some partition's insertion rate is at or below its forced eviction rate.
var ErrInfeasible = errors.New("analytic: partitioning infeasible (I_i <= S_i^R for some i)")

// ScalingFactor2P returns the paper's Equation (1): the scaling factor α₂
// for partition 2 when partition 1 is unscaled (α₁ = 1), given partition
// 1's insertion-rate fraction i1 and size fraction s1, with R replacement
// candidates. Inputs must satisfy 0 < i1 < 1, 0 < s1 < 1, R ≥ 2.
//
// The closed form holds for i1 ≤ s1 (partition 1 is the low-I/S partition,
// giving α₂ ≥ 1, the case the paper states); for i1 > s1 relabel the
// partitions so the unscaled one has the lower I/S ratio.
func ScalingFactor2P(i1, s1 float64, r int) (float64, error) {
	if i1 <= 0 || i1 >= 1 || s1 <= 0 || s1 >= 1 {
		return 0, fmt.Errorf("analytic: fractions out of range: i1=%v s1=%v", i1, s1)
	}
	if r < 2 {
		return 0, fmt.Errorf("analytic: need R >= 2, got %d", r)
	}
	root := math.Pow(i1/s1, 1/float64(r-1))
	den := root - s1
	if den <= 0 {
		return 0, ErrInfeasible
	}
	s2 := 1 - s1
	return s2 / den, nil
}

// FeasibleMinInsertion returns the minimum insertion-rate fraction a
// partition of size fraction s can sustain with R candidates: s^R.
func FeasibleMinInsertion(s float64, r int) float64 {
	return math.Pow(s, float64(r))
}

// MaxSizeFraction returns the largest size fraction enforceable for a
// partition with insertion-rate fraction i and R candidates: i^(1/R).
// (The paper's example: i = 0.01, R = 16 → ≈ 0.75.)
func MaxSizeFraction(i float64, r int) float64 {
	return math.Pow(i, 1/float64(r))
}

// evalG computes G(y) = Σ_j S_j min(y/α_j, 1).
func evalG(y float64, s, alpha []float64) float64 {
	g := 0.0
	for j := range s {
		v := y / alpha[j]
		if v > 1 {
			v = 1
		}
		g += s[j] * v
	}
	return g
}

// integrateGPow integrates G(y)^(R−1) over [0, hi] with composite Simpson.
func integrateGPow(hi float64, r int, s, alpha []float64, steps int) float64 {
	if hi <= 0 {
		return 0
	}
	if steps%2 == 1 {
		steps++
	}
	h := hi / float64(steps)
	sum := math.Pow(evalG(0, s, alpha), float64(r-1)) +
		math.Pow(evalG(hi, s, alpha), float64(r-1))
	for k := 1; k < steps; k++ {
		y := float64(k) * h
		w := 4.0
		if k%2 == 0 {
			w = 2.0
		}
		sum += w * math.Pow(evalG(y, s, alpha), float64(r-1))
	}
	return sum * h / 3
}

const integrationSteps = 2048

// EvictionFraction returns E_i(α) for partition i under the framework.
func EvictionFraction(i int, s, alpha []float64, r int) float64 {
	return float64(r) * s[i] / alpha[i] *
		integrateGPow(alpha[i], r, s, alpha, integrationSteps)
}

// ScalingFactors solves the N-partition generalization (§IV-E): scaling
// factors α (normalized so min α = 1) such that each partition's eviction
// fraction matches its insertion fraction: E_i(α) = I_i. insert and size
// must be positive and each sum to 1. It returns ErrInfeasible when some
// partition violates the bound I_i > S_i^R... relaxed: when the fixed point
// iteration cannot satisfy the targets.
func ScalingFactors(insert, size []float64, r int) ([]float64, error) {
	n := len(insert)
	if n == 0 || len(size) != n {
		return nil, errors.New("analytic: insert and size must be equal-length and non-empty")
	}
	if n == 1 {
		return []float64{1}, nil
	}
	var si, ss float64
	for i := 0; i < n; i++ {
		if insert[i] <= 0 || size[i] <= 0 {
			return nil, errors.New("analytic: fractions must be positive")
		}
		si += insert[i]
		ss += size[i]
	}
	if math.Abs(si-1) > 1e-9 || math.Abs(ss-1) > 1e-9 {
		return nil, errors.New("analytic: fractions must sum to 1")
	}
	// Feasibility: every partition must receive insertions above its forced
	// eviction share. (Necessary condition; the iteration below confirms.)
	for i := 0; i < n; i++ {
		if insert[i] <= FeasibleMinInsertion(size[i], r) {
			return nil, ErrInfeasible
		}
	}

	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = 1
	}
	// Gauss–Seidel on coordinates: E_i is strictly increasing in α_i with
	// the others fixed, so per-coordinate bisection converges.
	const (
		outer = 200
		tol   = 1e-6
	)
	for iter := 0; iter < outer; iter++ {
		maxErr := 0.0
		for i := 0; i < n; i++ {
			lo, hi := 1e-6, 1e9
			for b := 0; b < 100; b++ {
				mid := math.Sqrt(lo * hi) // geometric bisection: α spans decades
				alpha[i] = mid
				if EvictionFraction(i, size, alpha, r) < insert[i] {
					lo = mid
				} else {
					hi = mid
				}
			}
			alpha[i] = math.Sqrt(lo * hi)
		}
		// Normalize: smallest α = 1 (only ratios matter).
		minA := alpha[0]
		for _, a := range alpha[1:] {
			if a < minA {
				minA = a
			}
		}
		for i := range alpha {
			alpha[i] /= minA
		}
		for i := 0; i < n; i++ {
			e := EvictionFraction(i, size, alpha, r)
			if d := math.Abs(e - insert[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr < tol {
			return alpha, nil
		}
	}
	// Accept modest residuals: the fixed point is attracting but slow when a
	// partition sits near the feasibility boundary.
	for i := 0; i < n; i++ {
		e := EvictionFraction(i, size, alpha, r)
		if math.Abs(e-insert[i]) > 1e-3 {
			return nil, fmt.Errorf("analytic: no convergence for partition %d (E=%v I=%v): %w",
				i, e, insert[i], ErrInfeasible)
		}
	}
	return alpha, nil
}

// EvictionFutilityCDF returns the model's associativity distribution for
// partition i: F(x) = P(evicted line's futility ≤ x | victim from i),
// evaluated at points+1 equally spaced x values in [0,1].
func EvictionFutilityCDF(i int, s, alpha []float64, r int, points int) []float64 {
	ei := EvictionFraction(i, s, alpha, r)
	out := make([]float64, points+1)
	for k := 0; k <= points; k++ {
		x := float64(k) / float64(points)
		// P(victim from i with futility ≤ x) = R·S_i/α_i ∫₀^{α_i x} G^{R−1}.
		v := float64(r) * s[i] / alpha[i] *
			integrateGPow(alpha[i]*x, r, s, alpha, integrationSteps)
		out[k] = v / ei
	}
	// Guard against integration noise at the top end.
	out[points] = 1
	return out
}

// AEF returns the model's average eviction futility for partition i:
// ∫ x dF(x) computed from the CDF by parts: AEF = 1 − ∫₀¹ F(x) dx.
func AEF(i int, s, alpha []float64, r int) float64 {
	const points = 512
	cdf := EvictionFutilityCDF(i, s, alpha, r, points)
	integral := 0.0
	for k := 0; k < points; k++ {
		integral += (cdf[k] + cdf[k+1]) / 2
	}
	integral /= points
	return 1 - integral
}

// UnpartitionedAEF returns R/(R+1): the AEF of a non-partitioned cache that
// always evicts the max-futility candidate of R uniform candidates.
func UnpartitionedAEF(r int) float64 { return float64(r) / float64(r+1) }

// WorstCaseAEF is the PF worst case (N ≥ R): futility of evictions becomes
// uniform, AEF = 0.5 and the associativity CDF is the diagonal F(x) = x.
const WorstCaseAEF = 0.5
