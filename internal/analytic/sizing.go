package analytic

import "math"

// Size-deviation model (§IV-D): under FS with fixed scaling factors, a
// partition's actual size performs a mean-reverting random walk. On each
// eviction event (paired with one insertion), partition 1's size increments
// with probability I₁·(1−E₁) and decrements with probability (1−I₁)·E₁,
// where E₁ depends on the *current* size fraction — the restoring force.
// The stationary distribution of this birth–death chain gives the deviation
// CDF and MAD that Fig. 5 measures.

// SizingModel describes one partition of a two-partition FS cache under the
// uniformity framework.
type SizingModel struct {
	// TotalLines is the cache capacity M.
	TotalLines int
	// Insert1 is partition 1's insertion-rate fraction I₁.
	Insert1 float64
	// Alpha2 is partition 2's scaling factor (partition 1 unscaled).
	Alpha2 float64
	// R is the number of replacement candidates.
	R int
}

// evict1 returns E₁ when partition 1 holds n of M lines.
func (m *SizingModel) evict1(n int) float64 {
	s1 := float64(n) / float64(m.TotalLines)
	if s1 <= 0 {
		return 0
	}
	if s1 >= 1 {
		return 1
	}
	s := []float64{s1, 1 - s1}
	alpha := []float64{1, m.Alpha2}
	return EvictionFraction(0, s, alpha, m.R)
}

// Stationary computes the stationary distribution of partition 1's size
// over [lo, hi] (inclusive), by detailed balance:
// π(n+1)/π(n) = p_up(n)/p_down(n+1).
func (m *SizingModel) Stationary(lo, hi int) []float64 {
	if lo < 1 {
		lo = 1
	}
	if hi > m.TotalLines-1 {
		hi = m.TotalLines - 1
	}
	n := hi - lo + 1
	logpi := make([]float64, n)
	for k := 1; k < n; k++ {
		cur := lo + k
		e1Prev := m.evict1(cur - 1)
		e1Cur := m.evict1(cur)
		up := m.Insert1 * (1 - e1Prev)
		down := (1 - m.Insert1) * e1Cur
		if up <= 0 || down <= 0 {
			logpi[k] = math.Inf(-1)
			continue
		}
		logpi[k] = logpi[k-1] + math.Log(up) - math.Log(down)
	}
	// Normalize in probability space.
	maxLog := math.Inf(-1)
	for _, l := range logpi {
		if l > maxLog {
			maxLog = l
		}
	}
	pi := make([]float64, n)
	sum := 0.0
	for k, l := range logpi {
		pi[k] = math.Exp(l - maxLog)
		sum += pi[k]
	}
	for k := range pi {
		pi[k] /= sum
	}
	return pi
}

// DeviationStats returns the model's predicted mean size, mean absolute
// deviation from target, and P(|dev| ≤ d) evaluated at each d in devs.
func (m *SizingModel) DeviationStats(target int, window int, devs []int) (mean, mad float64, cdf []float64) {
	lo, hi := target-window, target+window
	pi := m.Stationary(lo, hi)
	if lo < 1 {
		lo = 1
	}
	for k, p := range pi {
		n := lo + k
		mean += p * float64(n)
		mad += p * math.Abs(float64(n-target))
	}
	cdf = make([]float64, len(devs))
	for i, d := range devs {
		acc := 0.0
		for k, p := range pi {
			n := lo + k
			if abs(n-target) <= d {
				acc += p
			}
		}
		cdf[i] = acc
	}
	return mean, mad, cdf
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
