package analytic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// The paper's own numeric anchor for the feasibility bound: a partition with
// I₁ = 0.01 and R = 16 can hold at most 0.01^(1/16) ≈ 75% of the cache.
func TestMaxSizeFractionPaperAnchor(t *testing.T) {
	got := MaxSizeFraction(0.01, 16)
	if !almost(got, 0.75, 0.01) {
		t.Fatalf("MaxSizeFraction(0.01, 16) = %v, want ≈0.75", got)
	}
}

func TestFeasibleMinInsertion(t *testing.T) {
	if got := FeasibleMinInsertion(0.5, 4); !almost(got, 0.0625, 1e-12) {
		t.Fatalf("FeasibleMinInsertion = %v", got)
	}
}

// Fig. 3's top-left anchor: S₂ = 0.2, I₂ = 0.9, R = 16 → α₂ ≈ 2.8 (the
// figure's y axis tops out at 3.0).
func TestScalingFactor2PFig3Anchor(t *testing.T) {
	a2, err := ScalingFactor2P(0.1, 0.8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a2 < 2.5 || a2 > 3.0 {
		t.Fatalf("α₂ = %v, want ≈2.8", a2)
	}
}

// §IV-C anchors: with I₁=I₂=0.5, shrinking partition 2 from S₂=0.4 to 0.1
// raises α₂ from ≈1.03 to ≈1.6.
func TestScalingFactor2PFig4Anchors(t *testing.T) {
	a, err := ScalingFactor2P(0.5, 0.6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, 1.031, 0.01) {
		t.Fatalf("α₂(S₂=0.4) = %v, want ≈1.031", a)
	}
	b, err := ScalingFactor2P(0.5, 0.9, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b, 1.62, 0.02) {
		t.Fatalf("α₂(S₂=0.1) = %v, want ≈1.62", b)
	}
}

func TestScalingFactor2PMonotonicity(t *testing.T) {
	// Fig. 3: α₂ grows as I₂ increases (I₁ decreases) and as S₂ shrinks.
	prev := 0.0
	for _, i2 := range []float64{0.6, 0.7, 0.8, 0.9} {
		a, err := ScalingFactor2P(1-i2, 0.7, 16)
		if err != nil {
			t.Fatal(err)
		}
		if a <= prev {
			t.Fatalf("α₂ not increasing in I₂: %v after %v", a, prev)
		}
		prev = a
	}
	prev = math.Inf(1)
	for _, s2 := range []float64{0.2, 0.25, 0.3, 0.35, 0.4} {
		a, err := ScalingFactor2P(0.3, 1-s2, 16)
		if err != nil {
			t.Fatal(err)
		}
		if a >= prev {
			t.Fatalf("α₂ not decreasing in S₂: %v after %v", a, prev)
		}
		prev = a
	}
}

func TestScalingFactor2PInfeasible(t *testing.T) {
	// I₁ below S₁^R is unenforceable by any replacement-based scheme.
	s1 := 0.9
	i1 := FeasibleMinInsertion(s1, 4) * 0.5
	if _, err := ScalingFactor2P(i1, s1, 4); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestScalingFactor2PBadInputs(t *testing.T) {
	for _, c := range []struct {
		i1, s1 float64
		r      int
	}{
		{0, 0.5, 16}, {1, 0.5, 16}, {0.5, 0, 16}, {0.5, 1, 16}, {0.5, 0.5, 1},
	} {
		if _, err := ScalingFactor2P(c.i1, c.s1, c.r); err == nil {
			t.Errorf("ScalingFactor2P(%v,%v,%d) succeeded", c.i1, c.s1, c.r)
		}
	}
}

// The general solver must reproduce the closed form for two partitions.
func TestScalingFactorsMatchesClosedForm(t *testing.T) {
	cases := []struct{ i1, s1 float64 }{
		{0.5, 0.6}, {0.5, 0.9}, {0.1, 0.8}, {0.3, 0.65}, {0.4, 0.75},
	}
	for _, c := range cases {
		want, err := ScalingFactor2P(c.i1, c.s1, 16)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ScalingFactors([]float64{c.i1, 1 - c.i1}, []float64{c.s1, 1 - c.s1}, 16)
		if err != nil {
			t.Fatalf("ScalingFactors(%v): %v", c, err)
		}
		if !almost(got[0], 1, 1e-3) {
			t.Fatalf("α₁ = %v, want 1", got[0])
		}
		if !almost(got[1]/want, 1, 0.02) {
			t.Fatalf("α₂ = %v, closed form %v", got[1], want)
		}
	}
}

func TestScalingFactorsEqualIS(t *testing.T) {
	// §IV-C: when every partition has I_i/S_i = 1 all scaling factors are 1
	// and associativity is fully preserved regardless of partition count.
	insert := []float64{0.25, 0.25, 0.25, 0.25}
	size := []float64{0.25, 0.25, 0.25, 0.25}
	alpha, err := ScalingFactors(insert, size, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range alpha {
		if !almost(a, 1, 0.01) {
			t.Fatalf("α[%d] = %v, want 1", i, a)
		}
	}
}

func TestScalingFactorsFourPartitions(t *testing.T) {
	insert := []float64{0.1, 0.2, 0.3, 0.4}
	size := []float64{0.4, 0.3, 0.2, 0.1}
	alpha, err := ScalingFactors(insert, size, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Stationarity: eviction fractions match insertion fractions.
	for i := range insert {
		e := EvictionFraction(i, size, alpha, 16)
		if !almost(e, insert[i], 2e-3) {
			t.Fatalf("E[%d] = %v, want %v (α=%v)", i, e, insert[i], alpha)
		}
	}
	// Higher I/S ratio ⇒ larger α (§IV-E summary).
	for i := 1; i < 4; i++ {
		if alpha[i] <= alpha[i-1] {
			t.Fatalf("α not increasing with I/S: %v", alpha)
		}
	}
}

func TestScalingFactorsValidation(t *testing.T) {
	if _, err := ScalingFactors(nil, nil, 16); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ScalingFactors([]float64{0.5}, []float64{0.5, 0.5}, 16); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ScalingFactors([]float64{0.5, 0.6}, []float64{0.5, 0.5}, 16); err == nil {
		t.Error("non-normalized insert accepted")
	}
	if _, err := ScalingFactors([]float64{-1, 2}, []float64{0.5, 0.5}, 16); err == nil {
		t.Error("negative fraction accepted")
	}
	if a, err := ScalingFactors([]float64{1}, []float64{1}, 16); err != nil || a[0] != 1 {
		t.Error("single partition must be trivially α=1")
	}
}

func TestEvictionFractionsSumToOne(t *testing.T) {
	s := []float64{0.5, 0.3, 0.2}
	alpha := []float64{1, 1.4, 2.2}
	sum := 0.0
	for i := range s {
		sum += EvictionFraction(i, s, alpha, 16)
	}
	if !almost(sum, 1, 1e-3) {
		t.Fatalf("ΣE = %v, want 1", sum)
	}
}

func TestUnpartitionedAEF(t *testing.T) {
	if !almost(UnpartitionedAEF(16), 16.0/17, 1e-12) {
		t.Fatal("UnpartitionedAEF wrong")
	}
	// The framework must agree: one partition, α=1.
	if got := AEF(0, []float64{1}, []float64{1}, 16); !almost(got, 16.0/17, 1e-3) {
		t.Fatalf("framework AEF = %v, want %v", got, 16.0/17)
	}
}

// §IV-C's qualitative claims about FS associativity.
func TestAEFProperties(t *testing.T) {
	s := []float64{0.9, 0.1}
	a2, err := ScalingFactor2P(0.5, 0.9, 16)
	if err != nil {
		t.Fatal(err)
	}
	alpha := []float64{1, a2}
	aef1 := AEF(0, s, alpha, 16)
	aef2 := AEF(1, s, alpha, 16)
	// Unscaled partition keeps full associativity (same AEF as
	// unpartitioned); scaled partition is somewhat degraded but stays high.
	if !almost(aef1, UnpartitionedAEF(16), 0.02) {
		t.Fatalf("AEF of unscaled partition = %v, want ≈%v", aef1, UnpartitionedAEF(16))
	}
	if aef2 >= aef1 {
		t.Fatalf("scaled partition AEF %v not below unscaled %v", aef2, aef1)
	}
	// Paper's anchor: S₂=0.1, I=0.5 → AEF₂ ≈ 0.86.
	if aef2 < 0.80 || aef2 > 0.92 {
		t.Fatalf("AEF₂ = %v, want ≈0.86", aef2)
	}
}

func TestEvictionFutilityCDFShape(t *testing.T) {
	s := []float64{0.6, 0.4}
	alpha := []float64{1, 1.5}
	for part := 0; part < 2; part++ {
		cdf := EvictionFutilityCDF(part, s, alpha, 16, 64)
		if !almost(cdf[0], 0, 1e-6) || !almost(cdf[64], 1, 1e-6) {
			t.Fatalf("CDF endpoints wrong: %v, %v", cdf[0], cdf[64])
		}
		for k := 1; k <= 64; k++ {
			if cdf[k] < cdf[k-1]-1e-9 {
				t.Fatalf("CDF not monotone at %d", k)
			}
		}
	}
}

// Property: Eq. (1) always yields a stationary solution: plugging α back
// into the framework reproduces E₁ = I₁.
func TestQuickEquation1Stationary(t *testing.T) {
	f := func(rawI, rawS uint16) bool {
		i1 := 0.05 + 0.9*float64(rawI)/65535
		s1 := 0.05 + 0.9*float64(rawS)/65535
		if i1 > s1 {
			// Eq. (1) is stated for the low-I/S partition unscaled (α₂ ≥ 1);
			// the swapped case is covered by relabeling partitions.
			i1, s1 = 1-i1, 1-s1
		}
		a2, err := ScalingFactor2P(i1, s1, 16)
		if err != nil {
			return true // infeasible corner; nothing to check
		}
		s := []float64{s1, 1 - s1}
		alpha := []float64{1, a2}
		e1 := EvictionFraction(0, s, alpha, 16)
		return almost(e1, i1, 5e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSizingModelRestoring(t *testing.T) {
	// Equal split, I₁ = 0.5 ⇒ α₂ from Eq. (1) is 1; the walk is symmetric
	// around the target with small MAD relative to capacity.
	m := &SizingModel{TotalLines: 4096, Insert1: 0.5, Alpha2: 1, R: 16}
	target := 2048
	mean, mad, cdf := m.DeviationStats(target, 1024, []int{0, 16, 64, 256, 1024})
	if !almost(mean, float64(target), 4) {
		t.Fatalf("mean = %v, want ≈%d", mean, target)
	}
	if mad <= 0 || mad > 200 {
		t.Fatalf("MAD = %v, want small positive", mad)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("deviation CDF not monotone: %v", cdf)
		}
	}
	if !almost(cdf[len(cdf)-1], 1, 1e-6) {
		t.Fatalf("deviation CDF tail = %v", cdf[len(cdf)-1])
	}
}

func TestSizingModelLowerInsertionTighter(t *testing.T) {
	// §IV-D: I₁(1−I₁) governs deviation; I₁=0.1 must wander less than
	// I₁=0.5. (Both with matching Eq. (1) alphas at equal split.)
	a05, _ := ScalingFactor2P(0.5, 0.5, 16)
	a01, _ := ScalingFactor2P(0.1, 0.5, 16)
	m5 := &SizingModel{TotalLines: 4096, Insert1: 0.5, Alpha2: a05, R: 16}
	m1 := &SizingModel{TotalLines: 4096, Insert1: 0.1, Alpha2: a01, R: 16}
	_, mad5, _ := m5.DeviationStats(2048, 1024, nil)
	_, mad1, _ := m1.DeviationStats(2048, 1024, nil)
	if mad1 >= mad5 {
		t.Fatalf("MAD(I₁=0.1)=%v not below MAD(I₁=0.5)=%v", mad1, mad5)
	}
}

func BenchmarkScalingFactors(b *testing.B) {
	insert := []float64{0.1, 0.2, 0.3, 0.4}
	size := []float64{0.4, 0.3, 0.2, 0.1}
	for i := 0; i < b.N; i++ {
		if _, err := ScalingFactors(insert, size, 16); err != nil {
			b.Fatal(err)
		}
	}
}
