package experiments

import (
	"io"

	"fscache/internal/futility"
	"fscache/internal/trace"
)

// §VIII sensitivity studies: the feedback controller's two parameters —
// interval length l (paper default 16) and changing ratio Δα (paper
// default 2, the bit-shift case). Metrics: sizing error (MAD of partition
// 1's deviation) and associativity (partition 1's AEF), under a 2-partition
// mcf workload with skewed insertion pressure against an equal split.

// SensRow is one parameter point.
type SensRow struct {
	Interval int
	Delta    float64
	MAD      float64
	AEF      float64
	OccFrac  float64
}

// SensResult collects a sweep.
type SensResult struct {
	Scale Scale
	What  string
	Rows  []SensRow
}

// SensIntervals is the swept interval-length grid.
var SensIntervals = []int{4, 8, 16, 32, 64, 128}

// SensDeltas is the swept changing-ratio grid.
var SensDeltas = []float64{1.25, 1.5, 2, 4}

// SensInterval sweeps l with Δα = 2.
func SensInterval(scale Scale) SensResult {
	res := SensResult{Scale: scale, What: "interval"}
	for _, l := range SensIntervals {
		res.Rows = append(res.Rows, runSensCase(scale, FSFeedbackParams{Interval: l, Delta: 2}))
	}
	return res
}

// SensDelta sweeps Δα with l = 16.
func SensDelta(scale Scale) SensResult {
	res := SensResult{Scale: scale, What: "delta"}
	for _, d := range SensDeltas {
		res.Rows = append(res.Rows, runSensCase(scale, FSFeedbackParams{Interval: 16, Delta: d}))
	}
	return res
}

func runSensCase(scale Scale, params FSFeedbackParams) SensRow {
	lines := scale.AnalyticLines
	b := Build(CacheSpec{
		Lines:          lines,
		Array:          ArrayRandom16,
		Rank:           futility.CoarseLRU,
		Scheme:         SchemeFS,
		Parts:          2,
		Seed:           seedStream(scale.Seed, "sens"),
		TrackDeviation: true,
	}, params)
	targets := []int{lines / 2, lines / 2}
	b.SetTargets(targets)
	gens := []trace.Generator{
		mcfGenerator(scale, seedStream(scale.Seed, "sens-t0"), 0),
		mcfGenerator(scale, seedStream(scale.Seed, "sens-t1"), 1),
	}
	d := newInsertionDriver(seedStream(scale.Seed, "sens-drv"), []float64{0.75, 0.25}, gens, b.Cache)
	fillToTargets(d, b, targets)
	for i := 0; i < lines; i++ {
		d.insert()
	}
	b.Cache.ResetStats()
	for i := 0; i < scale.Insertions/2; i++ {
		d.insert()
	}
	return SensRow{
		Interval: params.Interval,
		Delta:    params.Delta,
		MAD:      b.Cache.Stats(0).Deviation.MAD(),
		AEF:      b.Cache.Stats(0).AEF(),
		OccFrac:  b.Cache.MeanOccupancy(0) / float64(lines/2),
	}
}

// Print renders the sweep.
func (r SensResult) Print(w io.Writer) {
	fprintf(w, "Sensitivity (%s scale): FS feedback %s sweep (2 mcf threads, I=0.75/0.25, equal split)\n",
		r.Scale.Name, r.What)
	fprintf(w, "%8s %6s %10s %8s %9s\n", "interval", "delta", "MAD", "AEF", "occ/tgt")
	for _, row := range r.Rows {
		fprintf(w, "%8d %6.2f %10.2f %8.3f %9.3f\n",
			row.Interval, row.Delta, row.MAD, row.AEF, row.OccFrac)
	}
}
