package experiments

import (
	"io"

	"fscache/internal/futility"
	"fscache/internal/policy"
	"fscache/internal/sim"
	"fscache/internal/stats"
	"fscache/internal/trace"
)

// Fig. 7 and the §VIII performance comparison (Fig. 8): a QoS-enabled
// 32-core CMP. Each mix has N_subject subject threads running the
// associativity-sensitive gromacs with a 256 KB (4096-line) guarantee and
// 32 − N_subject background threads running the memory-intensive lbm
// splitting the remainder. N_subject sweeps 1..31 in steps of 3. Schemes:
// PF, PriSM, Vantage, FS, FullAssoc; rankings: coarse-grain timestamp LRU
// and ideal OPT. Vantage is excluded at N_subject = 31 (its managed region
// cannot cover 97% of capacity).
//
// 7a: average occupancy of subject threads relative to target.
// 7b: average eviction futility (AEF) of subject threads.
// Fig. 8 (headline): subject IPC and overall throughput by scheme.

// Fig7Threads is the CMP's thread count (Table II: 32 cores).
const Fig7Threads = 32

// Fig7SubjectCounts returns the swept subject counts 1, 4, ..., 31.
func Fig7SubjectCounts() []int {
	out := make([]int, 0, 11)
	for n := 1; n <= 31; n += 3 {
		out = append(out, n)
	}
	return out
}

// Fig7Row is one (scheme, ranking, N_subject) run.
type Fig7Row struct {
	Scheme   SchemeName
	Rank     futility.Kind
	Subjects int
	// OccupancyFrac is mean subject occupancy / target.
	OccupancyFrac float64
	// SubjectAEF is the mean AEF over subject partitions.
	SubjectAEF float64
	// SubjectIPC and BackgroundIPC are per-group mean IPCs.
	SubjectIPC    float64
	BackgroundIPC float64
	// Throughput is the sum of all thread IPCs.
	Throughput float64
	// SubjectMissRate is the mean subject L2 miss rate.
	SubjectMissRate float64
	// Abnormality is PriSM's abnormality rate (PriSM rows only).
	Abnormality float64
	// Skipped marks configurations a scheme cannot run (Vantage at 97%).
	Skipped bool
}

// Fig7Result collects the sweep.
type Fig7Result struct {
	Scale Scale
	Rows  []Fig7Row
}

// Fig7 runs the full sweep for the given schemes and rankings; nil selects
// the paper's sets.
func Fig7(scale Scale, schemes []SchemeName, ranks []futility.Kind) Fig7Result {
	return Fig7Sweep(scale, nil, schemes, ranks)
}

// Fig7Sweep is Fig7 with an explicit subject-count list (nil selects the
// paper's 1, 4, ..., 31).
func Fig7Sweep(scale Scale, counts []int, schemes []SchemeName, ranks []futility.Kind) Fig7Result {
	if counts == nil {
		counts = Fig7SubjectCounts()
	}
	if schemes == nil {
		schemes = AllQoSSchemes()
	}
	if ranks == nil {
		ranks = []futility.Kind{futility.CoarseLRU, futility.OPT}
	}
	res := Fig7Result{Scale: scale}
	// Build per-thread traces once per rank (next-use only needed for OPT);
	// thread t's stream is fixed across schemes so comparisons are paired.
	for _, rank := range ranks {
		for _, nSubj := range counts {
			traces := fig7Traces(scale, nSubj, rank)
			rows := make([]Fig7Row, len(schemes))
			rank, nSubj := rank, nSubj
			parallelFor(len(schemes), func(i int) {
				rows[i] = runFig7Cell(scale, schemes[i], rank, nSubj, traces)
			})
			res.Rows = append(res.Rows, rows...)
		}
	}
	return res
}

// fig7Traces builds the mix's per-thread L2 traces: subjects first.
func fig7Traces(scale Scale, nSubj int, rank futility.Kind) []*trace.Trace {
	traces := make([]*trace.Trace, Fig7Threads)
	for t := 0; t < Fig7Threads; t++ {
		bench := "lbm"
		if t < nSubj {
			bench = "gromacs"
		}
		gen := profileGenerator(scale, bench, seedStream(scale.Seed, "fig7"), t)
		l1 := sim.NewL1(scale.L1Lines, 4)
		traces[t] = sim.BuildL2Trace(gen, l1, scale.TraceLen, 0)
		if rank == futility.OPT {
			traces[t].ComputeNextUse()
		}
	}
	return traces
}

func runFig7Cell(scale Scale, scheme SchemeName, rank futility.Kind, nSubj int, traces []*trace.Trace) Fig7Row {
	row := Fig7Row{Scheme: scheme, Rank: rank, Subjects: nSubj}
	managed := 0
	if scheme == SchemeVantage {
		managed = scale.L2Lines * 9 / 10
		if nSubj*scale.SubjectLines > managed {
			row.Skipped = true
			return row
		}
	}
	b := Build(CacheSpec{
		Lines:  scale.L2Lines,
		Array:  Array16Way,
		Rank:   rank,
		Scheme: scheme,
		Parts:  Fig7Threads,
		Seed:   seedStream(scale.Seed, "fig7"+string(scheme)),
	}, FSFeedbackParams{})
	q := policy.QoS{
		Subjects:     nSubj,
		Background:   Fig7Threads - nSubj,
		SubjectLines: scale.SubjectLines,
		ManagedLines: managed,
	}
	b.SetTargets(q.Targets(scale.L2Lines))

	m := sim.NewMulticore(b.Cache, sim.DefaultTiming(), traces)
	m.SetWarmup(0.3) // exclude the cold fill, as the paper's long runs do
	results := m.Run()

	var subjIPC, bgIPC, occ, miss []float64
	pooledAEF := stats.NewHistogram(64)
	for t := 0; t < Fig7Threads; t++ {
		if t < nSubj {
			subjIPC = append(subjIPC, results[t].IPC())
			occ = append(occ, b.Cache.MeanOccupancy(t)/float64(scale.SubjectLines))
			pooledAEF.Merge(b.Cache.Stats(t).EvictFutility)
			miss = append(miss, results[t].MissRate())
		} else {
			bgIPC = append(bgIPC, results[t].IPC())
		}
		row.Throughput += results[t].IPC()
	}
	row.SubjectIPC = stats.Mean(subjIPC)
	row.BackgroundIPC = stats.Mean(bgIPC)
	row.OccupancyFrac = stats.Mean(occ)
	// AEF pooled over all subject evictions: partitions that never evicted
	// (e.g. FullAssoc guarantees) contribute no samples rather than zeros.
	row.SubjectAEF = pooledAEF.Mean()
	if pooledAEF.N() == 0 {
		row.SubjectAEF = 1 // no subject line was ever evicted
	}
	row.SubjectMissRate = stats.Mean(miss)
	if b.PriSM != nil {
		row.Abnormality = b.PriSM.AbnormalityRate()
	}
	return row
}

// Print renders one row per (rank, N_subject, scheme).
func (r Fig7Result) Print(w io.Writer) {
	fprintf(w, "Fig.7/Fig.8 (%s scale): QoS on %d threads — gromacs subjects (guaranteed), lbm background\n",
		r.Scale.Name, Fig7Threads)
	fprintf(w, "%-6s %5s %-10s %9s %8s %9s %8s %9s %7s\n",
		"rank", "Nsubj", "scheme", "occ/tgt", "AEF", "subjIPC", "bgIPC", "thruput", "abnorm")
	for _, row := range r.Rows {
		if row.Skipped {
			fprintf(w, "%-6v %5d %-10s %9s\n", row.Rank, row.Subjects, row.Scheme, "skipped")
			continue
		}
		fprintf(w, "%-6v %5d %-10s %9.3f %8.3f %9.4f %8.4f %9.3f %7.2f\n",
			row.Rank, row.Subjects, row.Scheme, row.OccupancyFrac, row.SubjectAEF,
			row.SubjectIPC, row.BackgroundIPC, row.Throughput, row.Abnormality)
	}
	// Append the Fig. 8 headline for every ranking present.
	seen := map[futility.Kind]bool{}
	for _, row := range r.Rows {
		if !seen[row.Rank] {
			seen[row.Rank] = true
			r.Summarize(row.Rank).Print(w)
		}
	}
}

// Fig8Summary condenses Fig. 7 runs into the paper's headline comparison:
// per scheme (for one ranking), the mean subject IPC across mixes and the
// best-case advantage of FS.
type Fig8Summary struct {
	Rank futility.Kind
	// MeanSubjectIPC maps scheme → mean subject IPC across mixes.
	MeanSubjectIPC map[SchemeName]float64
	// FSOverVantagePct and FSOverPriSMPct are max per-mix subject-IPC
	// advantages of FS, in percent (paper: up to 6.0% and 13.7%).
	FSOverVantagePct float64
	FSOverPriSMPct   float64
}

// Summarize computes the Fig. 8 headline from Fig. 7 rows for one ranking.
func (r Fig7Result) Summarize(rank futility.Kind) Fig8Summary {
	s := Fig8Summary{Rank: rank, MeanSubjectIPC: map[SchemeName]float64{}}
	count := map[SchemeName]int{}
	fsBySubj := map[int]float64{}
	for _, row := range r.Rows {
		if row.Rank != rank || row.Skipped {
			continue
		}
		s.MeanSubjectIPC[row.Scheme] += row.SubjectIPC
		count[row.Scheme]++
		if row.Scheme == SchemeFS {
			fsBySubj[row.Subjects] = row.SubjectIPC
		}
	}
	for k, n := range count {
		s.MeanSubjectIPC[k] /= float64(n)
	}
	for _, row := range r.Rows {
		if row.Rank != rank || row.Skipped {
			continue
		}
		fs, ok := fsBySubj[row.Subjects]
		if !ok || row.SubjectIPC <= 0 {
			continue
		}
		adv := (fs/row.SubjectIPC - 1) * 100
		switch row.Scheme {
		case SchemeVantage:
			if adv > s.FSOverVantagePct {
				s.FSOverVantagePct = adv
			}
		case SchemePriSM:
			if adv > s.FSOverPriSMPct {
				s.FSOverPriSMPct = adv
			}
		}
	}
	return s
}

// Print renders the headline summary.
func (s Fig8Summary) Print(w io.Writer) {
	fprintf(w, "Fig.8 headline (%v ranking): mean subject IPC by scheme\n", s.Rank)
	for _, scheme := range AllQoSSchemes() {
		if v, ok := s.MeanSubjectIPC[scheme]; ok {
			fprintf(w, "  %-10s %8.4f\n", scheme, v)
		}
	}
	fprintf(w, "  FS over Vantage (max): %+.1f%%   FS over PriSM (max): %+.1f%%\n",
		s.FSOverVantagePct, s.FSOverPriSMPct)
}
