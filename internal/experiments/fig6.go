package experiments

import (
	"io"

	"fscache/internal/futility"
	"fscache/internal/sim"
	"fscache/internal/trace"
)

// Fig. 6: associativity sensitivity — per-benchmark speedup of a
// fully-associative cache over a direct-mapped cache of the same size,
// across sizes, under OPT (6a) and LRU (6b) rankings. The paper's
// takeaways: sensitivity is benchmark- and size-dependent (mcf always
// sensitive, lbm never, gromacs only below ~1 MB), and LRU both shrinks
// the headroom and can invert it (cactusADM loses performance from full
// associativity under LRU).

// Fig6Benches are the six benchmarks the paper plots.
var Fig6Benches = []string{"mcf", "omnetpp", "gromacs", "astar", "cactusADM", "lbm"}

// Fig6Row is one (benchmark, size, ranking) speedup sample.
type Fig6Row struct {
	Bench   string
	Lines   int
	Rank    futility.Kind
	IPCFA   float64
	IPCDM   float64
	Speedup float64
}

// Fig6Result collects the sweep.
type Fig6Result struct {
	Scale Scale
	Rows  []Fig6Row
}

// Fig6Sizes returns the seven cache sizes swept at a given scale
// (128 KB → 8 MB at full scale).
func Fig6Sizes(scale Scale) []int {
	sizes := make([]int, 0, 7)
	for s := scale.L2Lines >> 6; s <= scale.L2Lines; s <<= 1 {
		sizes = append(sizes, s)
	}
	return sizes
}

// Fig6 runs the sweep.
func Fig6(scale Scale) Fig6Result {
	res := Fig6Result{Scale: scale}
	for _, rank := range []futility.Kind{futility.OPT, futility.LRU} {
		for _, bench := range Fig6Benches {
			// One L2 trace per benchmark and ranking (shared across sizes).
			gen := profileGenerator(scale, bench, seedStream(scale.Seed, "fig6"+bench), 0)
			l1 := sim.NewL1(scale.L1Lines, 4)
			tr := sim.BuildL2Trace(gen, l1, scale.TraceLen, 0)
			if rank == futility.OPT {
				tr.ComputeNextUse()
			}
			for _, lines := range Fig6Sizes(scale) {
				ipcFA := runFig6Cell(scale, tr, lines, ArrayFullyAssc, rank)
				ipcDM := runFig6Cell(scale, tr, lines, ArrayDirect, rank)
				res.Rows = append(res.Rows, Fig6Row{
					Bench: bench, Lines: lines, Rank: rank,
					IPCFA: ipcFA, IPCDM: ipcDM, Speedup: ipcFA / ipcDM,
				})
			}
		}
	}
	return res
}

func runFig6Cell(scale Scale, tr *trace.Trace, lines int, arr ArrayKind, rank futility.Kind) float64 {
	b := Build(CacheSpec{
		Lines:  lines,
		Array:  arr,
		Rank:   rank,
		Scheme: SchemeUnmanaged,
		Parts:  1,
		Seed:   seedStream(scale.Seed, "fig6cell"+string(arr)),
	}, FSFeedbackParams{})
	b.SetTargets([]int{lines})
	results := sim.NewMulticore(b.Cache, sim.DefaultTiming(), []*trace.Trace{tr}).Run()
	return results[0].IPC()
}

// Print renders one row per (ranking, benchmark, size).
func (r Fig6Result) Print(w io.Writer) {
	fprintf(w, "Fig.6 (%s scale): fully-associative vs direct-mapped speedup\n", r.Scale.Name)
	fprintf(w, "%-6s %-12s %10s %8s %8s %9s\n", "rank", "bench", "lines", "IPC(FA)", "IPC(DM)", "speedup")
	for _, row := range r.Rows {
		fprintf(w, "%-6v %-12s %10d %8.4f %8.4f %9.3f\n",
			row.Rank, row.Bench, row.Lines, row.IPCFA, row.IPCDM, row.Speedup)
	}
}
