// Package experiments reproduces every figure and table of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each FigN
// function runs at a configurable Scale and returns a typed result that can
// print itself in paper-style rows; cmd/fstables drives them all.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"fscache/internal/baselines"
	"fscache/internal/cachearray"
	"fscache/internal/core"
	"fscache/internal/futility"
	"fscache/internal/trace"
	"fscache/internal/workload"
	"fscache/internal/xrand"
)

// Scale sets experiment fidelity. Full reproduces the paper's
// configuration (8 MB L2, 512 KB partitions); Quick shrinks caches and
// traces ~8× for tests and benchmarks while preserving every qualitative
// shape.
type Scale struct {
	// Name labels reports.
	Name string
	// L2Lines is the shared L2 size in 64 B lines (Table II: 8 MB → 131072).
	L2Lines int
	// PartLines is the per-partition size for Fig. 2 (512 KB → 8192).
	PartLines int
	// SubjectLines is the QoS guarantee for Fig. 7 (256 KB → 4096).
	SubjectLines int
	// TraceLen is the per-thread L2 access count for timing experiments.
	TraceLen int
	// AnalyticLines is the random-candidates cache for Fig. 4/5 (2 MB →
	// 32768).
	AnalyticLines int
	// Insertions is the insertion count driven through the analytical
	// cache experiments (Fig. 4/5).
	Insertions int
	// L1Lines sizes each private L1 filter (32 KB → 512 lines at full
	// scale).
	L1Lines int
	// WorkloadShrink divides workload region sizes so working-set-to-cache
	// ratios survive cache downscaling (1 at full scale).
	WorkloadShrink int
	// Seed roots all pseudo-randomness.
	Seed uint64
}

// Full returns the paper-fidelity scale.
func Full() Scale {
	return Scale{
		Name:           "full",
		L2Lines:        131072,
		PartLines:      8192,
		SubjectLines:   4096,
		TraceLen:       120000,
		AnalyticLines:  32768,
		Insertions:     1500000,
		L1Lines:        512,
		WorkloadShrink: 1,
		Seed:           20140621, // MICRO-47 submission-ish vintage
	}
}

// Quick returns a reduced scale for tests and benchmarks.
func Quick() Scale {
	return Scale{
		Name:           "quick",
		L2Lines:        16384,
		PartLines:      2048,
		SubjectLines:   512,
		TraceLen:       12000,
		AnalyticLines:  8192,
		Insertions:     150000,
		L1Lines:        256,
		WorkloadShrink: 6,
		Seed:           20140621,
	}
}

// SchemeName identifies a partitioning scheme configuration.
type SchemeName string

// Scheme configurations used across experiments.
const (
	// SchemeFS is feedback-based Futility Scaling (§V).
	SchemeFS SchemeName = "fs"
	// SchemePF is Partitioning-First (Algorithm 1).
	SchemePF SchemeName = "pf"
	// SchemePriSM is probabilistic shared-cache management.
	SchemePriSM SchemeName = "prism"
	// SchemeVantage is Vantage with the paper's parameters.
	SchemeVantage SchemeName = "vantage"
	// SchemeCQVP is quota-violation prohibition.
	SchemeCQVP SchemeName = "cqvp"
	// SchemeUnmanaged is the no-partitioning baseline.
	SchemeUnmanaged SchemeName = "unmanaged"
	// SchemeFullAssoc is PF on a fully-associative array (ideal).
	SchemeFullAssoc SchemeName = "fullassoc"
	// SchemeWayPart is placement-based way-partitioning (§II-B).
	SchemeWayPart SchemeName = "waypart"
)

// AllQoSSchemes lists the schemes compared in Fig. 7, in the paper's order.
func AllQoSSchemes() []SchemeName {
	return []SchemeName{SchemePF, SchemePriSM, SchemeVantage, SchemeFS, SchemeFullAssoc}
}

// ArrayKind identifies a cache-array organization for CacheSpec.
type ArrayKind string

// Array kinds.
const (
	Array16Way     ArrayKind = "setassoc-16"
	ArrayRandom16  ArrayKind = "random-16"
	ArrayFullyAssc ArrayKind = "fullyassoc"
	ArrayDirect    ArrayKind = "directmapped"
	ArrayZ4        ArrayKind = "zcache-z4/52"
	ArraySkew8     ArrayKind = "skew-8"
)

// CacheSpec assembles a partitioned L2 for an experiment.
type CacheSpec struct {
	Lines int
	Array ArrayKind
	// Ways overrides the associativity of Array16Way (default 16; scenario
	// specs choose their own associativity).
	Ways int
	// RandomR overrides the candidate count of ArrayRandom16 (default 16).
	RandomR        int
	Rank           futility.Kind
	Scheme         SchemeName
	Parts          int // application partitions
	Seed           uint64
	TrackDeviation bool
}

// Built is the assembled cache plus scheme handles experiments may need.
type Built struct {
	Cache *core.Cache
	// TotalParts includes scheme-private pseudo-partitions (Vantage's
	// unmanaged region).
	TotalParts int
	// FSFixed is non-nil when the scheme is fs-fixed (set via WithAlphas).
	FSFixed *core.FSFixed
	// FSFeedback is non-nil for SchemeFS.
	FSFeedback *core.FSFeedback
	// PriSM is non-nil for SchemePriSM.
	PriSM *baselines.PriSM
	// Vantage is non-nil for SchemeVantage.
	Vantage *baselines.Vantage
	// Ranker is the decision ranker backing the cache.
	Ranker futility.Ranker
	// Coarse is the ranker downcast to its coarse-timestamp implementation
	// when the spec asked for CoarseLRU; fault-injection experiments use it
	// to reach the timestamp tags.
	Coarse *futility.CoarseTS
}

// SetTargets installs targets for the application partitions, padding
// pseudo-partitions with zero.
func (b *Built) SetTargets(appTargets []int) {
	t := make([]int, b.TotalParts)
	copy(t, appTargets)
	b.Cache.SetTargets(t)
}

// FSFeedbackParams overrides the feedback controller for sensitivity
// studies; zero values keep defaults.
type FSFeedbackParams struct {
	Interval int
	Delta    float64
}

// Build assembles the cache. fsParams applies only to SchemeFS.
func Build(spec CacheSpec, fsParams FSFeedbackParams) *Built {
	parts := spec.Parts
	b := &Built{TotalParts: parts}

	// The FullAssoc ideal scheme forces a fully associative array and an
	// exact ranker (coarse timestamps have no worst-line tracking).
	if spec.Scheme == SchemeFullAssoc {
		spec.Array = ArrayFullyAssc
	}
	rank := spec.Rank
	if spec.Array == ArrayFullyAssc && rank == futility.CoarseLRU {
		rank = futility.LRU
	}

	var scheme core.Scheme
	switch spec.Scheme {
	case SchemeFS:
		fs := core.NewFSFeedback(parts, core.FSFeedbackConfig{
			Interval: fsParams.Interval,
			Delta:    fsParams.Delta,
		})
		b.FSFeedback = fs
		scheme = fs
	case SchemePF, SchemeFullAssoc:
		scheme = baselines.NewPF(parts)
	case SchemePriSM:
		p := baselines.NewPriSM(parts, baselines.DefaultPriSMWindow, xrand.Mix64(spec.Seed^0xbeef))
		b.PriSM = p
		scheme = p
	case SchemeVantage:
		b.TotalParts = parts + 1
		v := baselines.NewVantage(b.TotalParts, parts, baselines.DefaultVantageConfig())
		b.Vantage = v
		scheme = v
	case SchemeCQVP:
		scheme = baselines.NewCQVP(parts)
	case SchemeUnmanaged:
		scheme = baselines.NewUnmanaged()
	case SchemeWayPart:
		if spec.Array != Array16Way || (spec.Ways != 0 && spec.Ways != 16) {
			panic("experiments: waypart requires the 16-way set-associative array")
		}
		scheme = baselines.NewWayPart(parts, 16)
	case "fs-fixed":
		fs := core.NewFSFixed(parts)
		b.FSFixed = fs
		scheme = fs
	default:
		panicf("unknown scheme %q", spec.Scheme)
	}

	var arr cachearray.Array
	aseed := xrand.Mix64(spec.Seed ^ 0xa77a)
	switch spec.Array {
	case Array16Way:
		ways := spec.Ways
		if ways == 0 {
			ways = 16
		}
		// H3 indexing rather than plain XOR folding: our synthetic address
		// spaces are perfectly aligned (component bases in high bits), so
		// XOR folds resonate at particular set counts and manufacture
		// conflicts real page-randomized SPEC addresses would never see.
		// H3 restores the "good hash indexing" premise of §III-B.
		arr = cachearray.NewSetAssoc(spec.Lines, ways, cachearray.IndexH3, aseed)
	case ArrayRandom16:
		r := spec.RandomR
		if r == 0 {
			r = 16
		}
		arr = cachearray.NewRandom(spec.Lines, r, aseed)
	case ArrayFullyAssc:
		arr = cachearray.NewFullyAssoc(spec.Lines)
	case ArrayDirect:
		arr = cachearray.NewDirectMapped(spec.Lines, cachearray.IndexH3, aseed)
	case ArrayZ4:
		arr = cachearray.NewZCache(spec.Lines, 4, 3, aseed)
	case ArraySkew8:
		arr = cachearray.NewSkew(spec.Lines, 8, aseed)
	default:
		panicf("unknown array %q", spec.Array)
	}

	ranker := futility.New(rank, spec.Lines, b.TotalParts, xrand.Mix64(spec.Seed^0x7a17))
	b.Ranker = ranker
	if c, ok := ranker.(*futility.CoarseTS); ok {
		b.Coarse = c
	}
	var ref futility.Ranker
	if rk := futility.Reference(rank); rk != rank {
		ref = futility.New(rk, spec.Lines, b.TotalParts, xrand.Mix64(spec.Seed^0x4ef))
	}

	b.Cache = core.New(core.Config{
		Array:          arr,
		Ranker:         ranker,
		Reference:      ref,
		Scheme:         scheme,
		Parts:          b.TotalParts,
		TrackDeviation: spec.TrackDeviation,
	})
	return b
}

// insertionDriver realizes the paper's insertion-rate control (§IV-C): the
// probability that the next insertion belongs to partition i equals the
// configured I_i, implemented by feeding the chosen thread's trace until it
// produces exactly one miss.
type insertionDriver struct {
	rng    *xrand.Rand
	cum    []float64
	gens   []trace.Generator
	cache  *core.Cache
	maxRun int
}

func newInsertionDriver(seed uint64, insProb []float64, gens []trace.Generator, cache *core.Cache) *insertionDriver {
	if len(insProb) != len(gens) {
		panic("experiments: insertion probabilities and generators mismatch")
	}
	cum := make([]float64, len(insProb))
	acc := 0.0
	for i, p := range insProb {
		acc += p
		cum[i] = acc
	}
	return &insertionDriver{
		rng:    xrand.New(seed),
		cum:    cum,
		gens:   gens,
		cache:  cache,
		maxRun: 100000,
	}
}

// insert feeds one insertion (miss) into a partition drawn from the
// configured distribution.
func (d *insertionDriver) insert() {
	u := d.rng.Float64()
	p := 0
	for p < len(d.cum)-1 && u >= d.cum[p] {
		p++
	}
	d.insertInto(p)
}

// insertInto feeds the chosen thread's trace until one miss occurs.
func (d *insertionDriver) insertInto(p int) {
	for n := 0; ; n++ {
		if n >= d.maxRun {
			panic("experiments: generator produced no miss; working set fits the partition")
		}
		a := d.gens[p].Next()
		if !d.cache.Access(a.Addr, p, trace.NoNextUse).Hit {
			return
		}
	}
}

// fillToTargets warms the cache by steering insertions into whichever
// partition is below its target until the cache is full, so measurements
// start from the stationary split rather than an insertion-proportional
// fill that would take many multiples of the cache size to relax.
func fillToTargets(d *insertionDriver, b *Built, targets []int) {
	lines := 0
	for _, t := range targets {
		lines += t
	}
	for {
		total := 0
		under := -1
		for p := range targets {
			total += b.Cache.Sizes()[p]
			if under < 0 && b.Cache.Sizes()[p] < targets[p] {
				under = p
			}
		}
		if total >= lines || under < 0 {
			return
		}
		d.insertInto(under)
	}
}

// freshLineGenerator yields an always-missing stream (disjoint fresh lines).
type freshLineGenerator struct {
	next uint64
}

func newFreshLineGenerator(space int) *freshLineGenerator {
	return &freshLineGenerator{next: uint64(space+1) << 40}
}

// Next implements trace.Generator.
func (g *freshLineGenerator) Next() trace.Access {
	g.next++
	return trace.Access{Addr: g.next}
}

// profileGenerator returns a benchmark generator at the scale's workload
// shrink factor.
func profileGenerator(scale Scale, bench string, seed uint64, thread int) trace.Generator {
	p, err := workload.ByName(bench)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return p.Shrunk(scale.WorkloadShrink).NewGenerator(seed, thread)
}

// mcfGenerator returns the workload generator for the paper's flagship
// associativity-sensitive benchmark.
func mcfGenerator(scale Scale, seed uint64, thread int) trace.Generator {
	return profileGenerator(scale, "mcf", seed, thread)
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic("experiments: write failed: " + err.Error())
	}
}

// parallelWorkers, when positive, overrides the worker count used by
// parallelFor. The determinism regression test pins it to 1 and compares
// against the concurrent run; production code leaves it at 0.
var parallelWorkers = 0

// parallelFor runs fn(0..n-1) on up to GOMAXPROCS workers. Experiment cells
// are independent and individually seeded, so results are identical to the
// sequential order regardless of scheduling.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if parallelWorkers > 0 {
		workers = parallelWorkers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//fslint:ignore determinism cells are independent and individually seeded; results are written to disjoint indices, identical to sequential order
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// panicf formats a cold-path panic message out of line, keeping fmt calls
// (and their escaping arguments) out of the callers' bodies — the fslint
// hotpath rule rejects panic(fmt.Sprintf(...)) inline in simulation code.
//
//go:noinline
func panicf(format string, args ...any) {
	panic("experiments: " + fmt.Sprintf(format, args...))
}
