package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the golden files from the current implementation:
//
//	go test ./internal/experiments -run TestGoldenEquivalence -update-golden
//
// Goldens may only be refreshed when experiment *behavior* deliberately
// changes; performance work must leave them byte-identical (DESIGN.md §10).
var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment outputs")

// goldenScale mirrors the root package's benchScale: the reduced scale at
// which `go test -bench .` drives every figure. Golden equivalence is pinned
// at this scale so the test stays cheap enough for every CI run.
func goldenScale() Scale {
	return Scale{
		Name:           "bench",
		L2Lines:        8192,
		PartLines:      1024,
		SubjectLines:   256,
		TraceLen:       6000,
		AnalyticLines:  4096,
		Insertions:     60000,
		L1Lines:        128,
		WorkloadShrink: 8,
		Seed:           20140621,
	}
}

// TestGoldenEquivalence is the replacement pipeline's behavior lock: the
// printed output of Table 2 and Fig. 2a at bench scale must stay
// byte-identical across performance refactors of the access path (buffer
// reuse, devirtualized rankers, iterative treap, incremental CDF). The
// goldens were generated before the zero-allocation rework and prove the
// optimized pipeline replays the exact same simulation.
func TestGoldenEquivalence(t *testing.T) {
	scale := goldenScale()
	cases := []struct {
		name   string
		render func() string
	}{
		{"table2_bench.golden", func() string {
			var buf bytes.Buffer
			Table2(scale).Print(&buf)
			return buf.String()
		}},
		{"fig2a_bench.golden", func() string {
			var buf bytes.Buffer
			Fig2a(scale, "mcf").Print(&buf)
			return buf.String()
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.render()
			if len(got) == 0 {
				t.Fatal("experiment printed nothing")
			}
			path := filepath.Join("testdata", tc.name)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("output diverged from golden %s.\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
