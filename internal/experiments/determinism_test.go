package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"fscache/internal/futility"
	"fscache/internal/sim"
	"fscache/internal/trace"
)

// TestParallelForDeterminism is the determinism contract's regression test:
// a grid run sequentially (one worker) and concurrently (GOMAXPROCS workers)
// must print byte-identical results. Any scheduling-order dependence — a
// shared RNG, unsorted map iteration, racy accumulation — shows up as a
// diff here, and as a race under `go test -race`.
func TestParallelForDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run too slow for -short")
	}
	scale := tiny()
	benches := []string{"mcf"}

	render := func(workers int) string {
		parallelWorkers = workers
		defer func() { parallelWorkers = 0 }()
		var buf bytes.Buffer
		Fig2bc(scale, benches).Print(&buf)
		return buf.String()
	}

	seq := render(1)
	par := render(runtime.GOMAXPROCS(0))
	if seq != par {
		t.Fatalf("parallelFor results depend on scheduling:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
			seq, runtime.GOMAXPROCS(0), par)
	}
	if len(seq) == 0 {
		t.Fatal("Fig2bc printed nothing")
	}
}

// TestParallelDeterminismReusedBuffers locks the zero-allocation hot path's
// determinism: the replacement pipeline now reuses per-cache candidate and
// move buffers (zcache relocation chains, random-candidate dedup into the
// caller's slice, skewed-way scratch), so every buffer must be owned by
// exactly one cache. Cells running concurrently under parallelFor would
// corrupt each other through any accidentally shared slice; this sweep runs
// the same grid with 1 and 4 workers and requires byte-identical output.
// ArrayZ4 and ArraySkew8 exercise the move buffer (relocating arrays),
// ArrayRandom16 exercises the dedup-into-dst candidate path.
func TestParallelDeterminismReusedBuffers(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run too slow for -short")
	}
	scale := tiny()
	arrays := []ArrayKind{ArrayZ4, ArrayRandom16, ArraySkew8}
	benches := []string{"mcf", "lbm"}

	render := func(workers int) string {
		parallelWorkers = workers
		defer func() { parallelWorkers = 0 }()
		out := make([]string, len(arrays))
		parallelFor(len(arrays), func(i int) {
			arr := arrays[i]
			traces := make([]*trace.Trace, len(benches))
			for th, bench := range benches {
				gen := profileGenerator(scale, bench, seedStream(scale.Seed, "bufdet"+bench), th)
				l1 := sim.NewL1(scale.L1Lines, 4)
				traces[th] = sim.BuildL2Trace(gen, l1, scale.TraceLen, 0)
			}
			b := Build(CacheSpec{
				Lines:  scale.PartLines * len(benches),
				Array:  arr,
				Rank:   futility.CoarseLRU,
				Scheme: SchemeFS,
				Parts:  len(benches),
				Seed:   seedStream(scale.Seed, "bufdet"+string(arr)),
			}, FSFeedbackParams{})
			targets := make([]int, len(benches))
			for th := range targets {
				targets[th] = scale.PartLines
			}
			b.SetTargets(targets)
			results := sim.NewMulticore(b.Cache, sim.DefaultTiming(), traces).Run()
			var sb strings.Builder
			fmt.Fprintf(&sb, "%s:", arr)
			for th, r := range results {
				fmt.Fprintf(&sb, " ipc=%.6f miss=%.6f occ=%.1f",
					r.IPC(), r.MissRate(), b.Cache.MeanOccupancy(th))
			}
			out[i] = sb.String()
		})
		return strings.Join(out, "\n")
	}

	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("reused-buffer cells depend on scheduling:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s",
			seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("sweep produced no output")
	}
}
