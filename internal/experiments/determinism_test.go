package experiments

import (
	"bytes"
	"runtime"
	"testing"
)

// TestParallelForDeterminism is the determinism contract's regression test:
// a grid run sequentially (one worker) and concurrently (GOMAXPROCS workers)
// must print byte-identical results. Any scheduling-order dependence — a
// shared RNG, unsorted map iteration, racy accumulation — shows up as a
// diff here, and as a race under `go test -race`.
func TestParallelForDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run too slow for -short")
	}
	scale := tiny()
	benches := []string{"mcf"}

	render := func(workers int) string {
		parallelWorkers = workers
		defer func() { parallelWorkers = 0 }()
		var buf bytes.Buffer
		Fig2bc(scale, benches).Print(&buf)
		return buf.String()
	}

	seq := render(1)
	par := render(runtime.GOMAXPROCS(0))
	if seq != par {
		t.Fatalf("parallelFor results depend on scheduling:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
			seq, runtime.GOMAXPROCS(0), par)
	}
	if len(seq) == 0 {
		t.Fatal("Fig2bc printed nothing")
	}
}
