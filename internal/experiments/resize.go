package experiments

import (
	"io"
	"strconv"

	"fscache/internal/futility"
	"fscache/internal/trace"
)

// Smooth resizing (§II-A, enforcement-scheme property 1): replacement-based
// schemes resize partitions "smoothly ... without incurring large overhead
// (no data flushing or migrating)". This experiment quantifies it: run two
// partitions at a 50/50 split, flip the targets to 75/25 mid-run, and
// measure (a) how many insertions each scheme needs to bring the growing
// partition within 5% of its new target and (b) the AEF during the
// transition — resizing must not cost associativity.

// ResizeRow is one scheme's transition measurement.
type ResizeRow struct {
	Scheme SchemeName
	// ConvergeInsertions is the insertions needed after the target flip for
	// partition 0 to first reach 95% of its new target (-1 if never).
	ConvergeInsertions int
	// TransitionAEF is partition 0's AEF measured during the transition
	// window.
	TransitionAEF float64
	// FinalFrac is partition 0's occupancy/new-target at the end.
	FinalFrac float64
}

// ResizeResult collects the comparison.
type ResizeResult struct {
	Scale Scale
	Rows  []ResizeRow
}

// Resize runs the transition for FS, PF, Vantage and PriSM.
func Resize(scale Scale) ResizeResult {
	res := ResizeResult{Scale: scale}
	for _, scheme := range []SchemeName{SchemeFS, SchemePF, SchemeVantage, SchemePriSM} {
		res.Rows = append(res.Rows, runResizeCase(scale, scheme))
	}
	return res
}

func runResizeCase(scale Scale, scheme SchemeName) ResizeRow {
	lines := scale.AnalyticLines
	b := Build(CacheSpec{
		Lines:  lines,
		Array:  ArrayRandom16,
		Rank:   futility.CoarseLRU,
		Scheme: scheme,
		Parts:  2,
		Seed:   seedStream(scale.Seed, "resize"+string(scheme)),
	}, FSFeedbackParams{})
	// Vantage manages 90%; give it proportional targets.
	cap := lines
	if scheme == SchemeVantage {
		cap = lines * 9 / 10
	}
	before := []int{cap / 2, cap - cap/2}
	after := []int{cap * 3 / 4, cap - cap*3/4}
	b.SetTargets(before)

	gens := []trace.Generator{
		mcfGenerator(scale, seedStream(scale.Seed, "resize-t0"), 0),
		mcfGenerator(scale, seedStream(scale.Seed, "resize-t1"), 1),
	}
	d := newInsertionDriver(seedStream(scale.Seed, "resize-drv"), []float64{0.5, 0.5}, gens, b.Cache)
	fillToTargets(d, b, before)
	for i := 0; i < lines; i++ {
		d.insert()
	}

	// Flip the allocation and watch partition 0 grow.
	b.SetTargets(after)
	b.Cache.ResetStats()
	row := ResizeRow{Scheme: scheme, ConvergeInsertions: -1}
	budget := scale.Insertions / 4
	threshold := after[0] * 95 / 100
	for i := 0; i < budget; i++ {
		d.insert()
		if row.ConvergeInsertions < 0 && b.Cache.Sizes()[0] >= threshold {
			row.ConvergeInsertions = i + 1
		}
	}
	row.TransitionAEF = b.Cache.Stats(0).AEF()
	row.FinalFrac = float64(b.Cache.Sizes()[0]) / float64(after[0])
	return row
}

// Print renders the comparison.
func (r ResizeResult) Print(w io.Writer) {
	fprintf(w, "Resize (%s scale): 50/50 → 75/25 target flip, equal insertion pressure\n", r.Scale.Name)
	fprintf(w, "%-10s %12s %14s %10s\n", "scheme", "conv.inserts", "transitionAEF", "final/tgt")
	for _, row := range r.Rows {
		conv := "never"
		if row.ConvergeInsertions >= 0 {
			conv = strconv.Itoa(row.ConvergeInsertions)
		}
		fprintf(w, "%-10s %12s %14.3f %10.3f\n", row.Scheme, conv, row.TransitionAEF, row.FinalFrac)
	}
}
