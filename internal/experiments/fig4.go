package experiments

import (
	"fmt"
	"io"

	"fscache/internal/analytic"
	"fscache/internal/futility"
	"fscache/internal/stats"
	"fscache/internal/trace"
)

// Fig. 4: associativity CDFs of FS versus PF on a 2 MB random-candidates
// cache (R = 16, the Uniformity Assumption realized) running two mcf
// threads with equal insertion rates (I₁ = I₂ = 0.5) and target splits
// S₁/S₂ ∈ {9/1, 6/4}. FS uses the fixed scaling factors of Equation (1);
// the paper's observations: the unscaled big partition keeps full
// associativity, the scaled small partition degrades mildly, and PF
// degrades both (badly for the small one).

// Fig4Row is one (scheme, split, partition) associativity measurement.
type Fig4Row struct {
	Scheme SchemeName
	S1     float64
	Part   int
	Size   float64 // measured mean size fraction
	AEF    float64
	CDF    []float64
	Alpha  float64 // FS scaling factor of the partition (1 for PF)
}

// Fig4Result collects the comparison.
type Fig4Result struct {
	Scale Scale
	Rows  []Fig4Row
}

// Fig4 runs the comparison.
func Fig4(scale Scale) Fig4Result {
	res := Fig4Result{Scale: scale}
	insert := []float64{0.5, 0.5}
	for _, s1 := range []float64{0.9, 0.6} {
		sizes := []float64{s1, 1 - s1}
		for _, scheme := range []SchemeName{"fs-fixed", SchemePF} {
			res.Rows = append(res.Rows, runFig4Case(scale, scheme, insert, sizes)...)
		}
	}
	return res
}

func runFig4Case(scale Scale, scheme SchemeName, insert, sizes []float64) []Fig4Row {
	lines := scale.AnalyticLines
	b := Build(CacheSpec{
		Lines:  lines,
		Array:  ArrayRandom16,
		Rank:   futility.LRU,
		Scheme: scheme,
		Parts:  2,
		Seed:   seedStream(scale.Seed, "fig4"+string(scheme)),
	}, FSFeedbackParams{})
	alphas := []float64{1, 1}
	if b.FSFixed != nil {
		a, err := analytic.ScalingFactors(insert, sizes, 16)
		if err != nil {
			panic("experiments: scaling factors: " + err.Error())
		}
		alphas = a
		b.FSFixed.SetAlphas(a)
	}
	targets := []int{int(sizes[0] * float64(lines)), lines - int(sizes[0]*float64(lines))}
	b.SetTargets(targets)

	gens := []trace.Generator{
		mcfGenerator(scale, seedStream(scale.Seed, "fig4-t0"), 0),
		mcfGenerator(scale, seedStream(scale.Seed, "fig4-t1"), 1),
	}
	d := newInsertionDriver(seedStream(scale.Seed, "fig4-drv"), insert, gens, b.Cache)
	fillToTargets(d, b, targets)
	for i := 0; i < lines; i++ {
		d.insert()
	}
	b.Cache.ResetStats()
	for i := 0; i < scale.Insertions; i++ {
		d.insert()
	}
	rows := make([]Fig4Row, 2)
	for p := 0; p < 2; p++ {
		st := b.Cache.Stats(p)
		rows[p] = Fig4Row{
			Scheme: scheme,
			S1:     sizes[0],
			Part:   p,
			Size:   b.Cache.MeanOccupancy(p) / float64(lines),
			AEF:    st.AEF(),
			CDF:    st.EvictFutility.CDF(),
			Alpha:  alphas[p],
		}
	}
	return rows
}

// Print renders one row per (scheme, split, partition).
func (r Fig4Result) Print(w io.Writer) {
	fprintf(w, "Fig.4 (%s scale): FS vs PF associativity, random-candidates cache R=16, two mcf threads, I1=I2\n", r.Scale.Name)
	fprintf(w, "%-10s %6s %6s %8s %10s %8s\n", "scheme", "S1", "part", "alpha", "meansize", "AEF")
	for _, row := range r.Rows {
		fprintf(w, "%-10s %6.2f %6d %8.3f %10.3f %8.3f\n",
			row.Scheme, row.S1, row.Part, row.Alpha, row.Size, row.AEF)
	}
}

// PrintPlots renders the FS-vs-PF associativity CDFs as terminal plots.
func (r Fig4Result) PrintPlots(w io.Writer) {
	for _, row := range r.Rows {
		xs := make([]float64, len(row.CDF))
		for i := range xs {
			xs[i] = float64(i+1) / float64(len(row.CDF))
		}
		label := fmt.Sprintf("%s S1=%.1f part %d (AEF %.3f)", row.Scheme, row.S1, row.Part, row.AEF)
		fprintf(w, "%s", stats.AsciiCDF(label, xs, row.CDF, 56, 10))
	}
}
