package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"fscache/internal/scenario"
)

// loadScenarioSpec reads one committed example spec.
func loadScenarioSpec(t *testing.T, name string) (*scenario.Spec, string) {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "scenarios")
	path := filepath.Join(dir, name)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed scenario missing: %v", err)
	}
	ld, err := scenario.LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	return ld.Spec, ld.Dir
}

// Acceptance: on the committed zipf-drift scenario the online allocator
// must beat static equal-split targets on aggregate miss ratio, and the
// mid-run phase change (theta drift starting at 30% of the stream) must be
// followed by a reallocation within a bounded number of epochs. Fully
// deterministic: the spec pins the seed and the allocator is seeded from it.
func TestAllocBeatsStaticOnZipfDrift(t *testing.T) {
	spec, dir := loadScenarioSpec(t, "zipf-drift.yaml")
	res, err := RunScenarioAlloc(spec, dir, "phase")
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc.MissRatio >= res.Static.MissRatio {
		t.Fatalf("online allocator (%.4f) must beat the static split (%.4f)",
			res.Alloc.MissRatio, res.Static.MissRatio)
	}

	// The drift begins at 0.3 × accesses. Decay halves stale curves every
	// epoch, so the phase-adaptive objective must reallocate within four
	// epochs of the onset.
	driftAt := uint64(0.3 * float64(spec.Accesses))
	epochLen := uint64(2 * spec.Cache.Lines)
	deadline := driftAt + 4*epochLen
	found := false
	for _, d := range res.Decisions {
		if d.Access > driftAt && d.Access <= deadline && d.Changed {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no reallocation within %d accesses of the drift onset at %d; decisions: %+v",
			deadline-driftAt, driftAt, res.Decisions)
	}
	if res.Reallocations == 0 || res.Epochs == 0 {
		t.Fatalf("allocator never worked: %d epochs, %d reallocations", res.Epochs, res.Reallocations)
	}
}

// Every shippable objective must clear the floor/capacity/divergence gates
// on the drifting spec — this is the `make alloc` smoke in miniature.
func TestAllocObjectivesClearGates(t *testing.T) {
	spec, dir := loadScenarioSpec(t, "zipf-drift.yaml")
	for _, obj := range []string{"utility", "maxmin", "qos"} {
		res, err := RunScenarioAlloc(spec, dir, obj)
		if err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
		for _, d := range res.Decisions {
			for p, tg := range d.Targets {
				if tg != 0 && tg < res.MinLines {
					t.Fatalf("%s: epoch %d partition %d target %d below floor %d",
						obj, d.Epoch, p, tg, res.MinLines)
				}
			}
		}
	}
}

// Unknown objectives surface as errors, not panics.
func TestAllocUnknownObjective(t *testing.T) {
	spec, dir := loadScenarioSpec(t, "zipf-drift.yaml")
	if _, err := RunScenarioAlloc(spec, dir, "bogus"); err == nil {
		t.Fatal("expected an error for an unknown objective")
	}
}
