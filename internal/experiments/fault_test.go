package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"fscache/internal/faultinject"
)

// The A4 acceptance criteria in one test: every fault class re-converges
// within ε, and two same-seed runs (one sequential, one parallel) print
// byte-identical tables.
func TestAblationFaultRecoversDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep too slow for -short")
	}
	scale := tiny()

	render := func(workers int) (AblationFaultResult, string) {
		parallelWorkers = workers
		defer func() { parallelWorkers = 0 }()
		res := AblationFault(scale)
		var buf bytes.Buffer
		res.Print(&buf)
		return res, buf.String()
	}

	res, seq := render(1)
	if len(res.Rows) != len(faultinject.Classes()) {
		t.Fatalf("A4 produced %d rows, want one per class (%d)", len(res.Rows), len(faultinject.Classes()))
	}
	for _, row := range res.Rows {
		if !row.Recovered {
			t.Errorf("%s: controller did not re-converge (maxDev %.3f, finalErr %.3f)",
				row.Class, row.MaxDev, row.FinalErr)
		}
		if row.FinalErr > FaultEps {
			t.Errorf("%s: final occupancy error %.3f exceeds ε=%.2f", row.Class, row.FinalErr, FaultEps)
		}
		if row.MaxDev < 0 {
			t.Errorf("%s: negative max deviation %.3f", row.Class, row.MaxDev)
		}
	}
	// The forced-alpha classes must visibly disturb the system — otherwise
	// the injection is a no-op and "recovery" proves nothing.
	for _, row := range res.Rows {
		if (row.Class == faultinject.ClassAlphaMax || row.Class == faultinject.ClassAlphaMin) &&
			row.MaxDev <= FaultEps {
			t.Errorf("%s: max deviation %.3f never left the ε band; injection had no effect",
				row.Class, row.MaxDev)
		}
	}

	_, par := render(runtime.GOMAXPROCS(0))
	if seq != par {
		t.Fatalf("A4 results depend on scheduling:\n--- 1 worker ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
