package experiments

import (
	"fmt"
	"io"

	"fscache/internal/futility"
	"fscache/internal/sim"
	"fscache/internal/stats"
	"fscache/internal/trace"
	"fscache/internal/workload"
	"fscache/internal/xrand"
)

// Fig. 2: partitioning-induced associativity loss under the
// Partitioning-First scheme (§III-C). A 16-way set-associative cache is
// split into N equal 512 KB partitions (the cache grows with N); each
// partition runs its own copy of a benchmark; futility ranking is OPT.
// 2a: associativity CDF of the first partition for mcf, N = 1..32.
// 2b: misses of the first partition, normalized to N = 1.
// 2c: IPC of the first partition, normalized to N = 1.

// Fig2PartCounts are the paper's partition counts.
var Fig2PartCounts = []int{1, 2, 4, 8, 16, 32}

// Fig2Row is one (benchmark, N) measurement.
type Fig2Row struct {
	Bench  string
	N      int
	AEF    float64
	CDF    []float64
	Misses uint64
	IPC    float64
}

// Fig2Result collects Fig. 2 across benchmarks and partition counts.
type Fig2Result struct {
	Scale Scale
	Rank  futility.Kind
	Rows  []Fig2Row
}

// runFig2Cell simulates one (benchmark, N) configuration and returns the
// first partition's statistics.
func runFig2Cell(scale Scale, bench string, n int, rank futility.Kind) Fig2Row {
	traces := make([]*trace.Trace, n)
	for t := 0; t < n; t++ {
		gen := profileGenerator(scale, bench, scale.Seed, t)
		l1 := sim.NewL1(scale.L1Lines, 4)
		traces[t] = sim.BuildL2Trace(gen, l1, scale.TraceLen, 0)
		if rank == futility.OPT {
			traces[t].ComputeNextUse()
		}
	}
	b := Build(CacheSpec{
		Lines:  n * scale.PartLines,
		Array:  Array16Way,
		Rank:   rank,
		Scheme: SchemePF,
		Parts:  n,
		Seed:   scale.Seed + uint64(n),
	}, FSFeedbackParams{})
	targets := make([]int, n)
	for i := range targets {
		targets[i] = scale.PartLines
	}
	b.SetTargets(targets)
	results := sim.NewMulticore(b.Cache, sim.DefaultTiming(), traces).Run()
	st := b.Cache.Stats(0)
	return Fig2Row{
		Bench:  bench,
		N:      n,
		AEF:    st.AEF(),
		CDF:    st.EvictFutility.CDF(),
		Misses: results[0].Misses,
		IPC:    results[0].IPC(),
	}
}

// Fig2a reproduces the associativity-CDF panel for one benchmark
// (mcf in the paper).
func Fig2a(scale Scale, bench string) Fig2Result {
	res := Fig2Result{Scale: scale, Rank: futility.OPT}
	for _, n := range Fig2PartCounts {
		res.Rows = append(res.Rows, runFig2Cell(scale, bench, n, futility.OPT))
	}
	return res
}

// Fig2bc reproduces the miss-count and IPC panels across all benchmarks.
func Fig2bc(scale Scale, benches []string) Fig2Result {
	if len(benches) == 0 {
		benches = workload.Names()
	}
	res := Fig2Result{Scale: scale, Rank: futility.OPT}
	type cell struct {
		bench string
		n     int
	}
	var cells []cell
	for _, bench := range benches {
		for _, n := range Fig2PartCounts {
			cells = append(cells, cell{bench, n})
		}
	}
	rows := make([]Fig2Row, len(cells))
	parallelFor(len(cells), func(i int) {
		rows[i] = runFig2Cell(scale, cells[i].bench, cells[i].n, futility.OPT)
	})
	res.Rows = rows
	return res
}

// Print renders paper-style rows: AEF per N, then normalized misses/IPC.
func (r Fig2Result) Print(w io.Writer) {
	fprintf(w, "Fig.2 (%s scale, %v ranking): PF with N equal partitions\n", r.Scale.Name, r.Rank)
	byBench := map[string][]Fig2Row{}
	var order []string
	for _, row := range r.Rows {
		if _, ok := byBench[row.Bench]; !ok {
			order = append(order, row.Bench)
		}
		byBench[row.Bench] = append(byBench[row.Bench], row)
	}
	fprintf(w, "%-12s %6s %8s %14s %10s\n", "bench", "N", "AEF", "misses(norm)", "IPC(norm)")
	for _, bench := range order {
		rows := byBench[bench]
		base := rows[0]
		for _, row := range rows {
			fprintf(w, "%-12s %6d %8.3f %14.3f %10.3f\n",
				bench, row.N, row.AEF,
				float64(row.Misses)/float64(max64(base.Misses, 1)),
				row.IPC/nonzero(base.IPC))
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func nonzero(x float64) float64 {
	if stats.Feq(x, 0) {
		return 1
	}
	return x
}

// seedStream derives a fresh per-use seed domain.
func seedStream(base uint64, tag string) uint64 {
	h := base
	for _, c := range tag {
		h = xrand.Mix64(h ^ uint64(c))
	}
	return h
}

// PrintPlots renders the associativity CDFs (Fig. 2a's panel) as terminal
// plots, one per (benchmark, N).
func (r Fig2Result) PrintPlots(w io.Writer) {
	for _, row := range r.Rows {
		xs := make([]float64, len(row.CDF))
		for i := range xs {
			xs[i] = float64(i+1) / float64(len(row.CDF))
		}
		label := fmt.Sprintf("%s N=%d (AEF %.3f)", row.Bench, row.N, row.AEF)
		fprintf(w, "%s", stats.AsciiCDF(label, xs, row.CDF, 56, 10))
	}
}
