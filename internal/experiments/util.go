package experiments

import (
	"io"

	"fscache/internal/futility"
	"fscache/internal/policy"
	"fscache/internal/sim"
	"fscache/internal/trace"
)

// Complete capacity-management stack (§II-A): an allocation policy decides
// sizes, an enforcement scheme realizes them. This experiment runs a
// heterogeneous 4-thread mix under three stacks —
//
//	equal targets + FS          (no utility information)
//	UCP-style utility + FS      (UMON miss curves + lookahead allocation)
//	unmanaged                   (no enforcement at all)
//
// and reports throughput. The utility policy should beat the equal split by
// taking capacity from streaming threads (flat miss curves) and giving it
// to reuse-heavy ones, with FS enforcing the chosen sizes.

// UtilRow is one stack's outcome.
type UtilRow struct {
	Stack      string
	Throughput float64
	IPCs       []float64
	Targets    []int
}

// UtilResult collects the comparison.
type UtilResult struct {
	Scale   Scale
	Benches []string
	Rows    []UtilRow
}

// UtilBenches is the heterogeneous mix: two cache-friendly threads, two
// streamers.
var UtilBenches = []string{"mcf", "gromacs", "lbm", "libquantum"}

// Util runs the comparison.
func Util(scale Scale) UtilResult {
	res := UtilResult{Scale: scale, Benches: UtilBenches}
	parts := len(UtilBenches)

	// Per-thread traces, shared across stacks for paired comparison.
	traces := make([]*trace.Trace, parts)
	for t, bench := range UtilBenches {
		gen := profileGenerator(scale, bench, seedStream(scale.Seed, "util"), t)
		traces[t] = sim.BuildL2Trace(gen, sim.NewL1(scale.L1Lines, 4), scale.TraceLen, 0)
	}

	// UMONs observe each thread's L2 stream (shadow tags see the stream the
	// shared cache would see).
	monitors := make([]*policy.UMON, parts)
	for t := range monitors {
		monitors[t] = policy.NewUMON(32, 64)
		for i := range traces[t].Accesses {
			monitors[t].Observe(traces[t].Accesses[i].Addr)
		}
	}

	equal := policy.Equal{Parts: parts}.Targets(scale.L2Lines)
	util := (&policy.Utility{Monitors: monitors, MinLines: scale.L2Lines / 64}).Targets(scale.L2Lines)

	res.Rows = append(res.Rows,
		runUtilCase(scale, "equal+fs", SchemeFS, equal, traces),
		runUtilCase(scale, "utility+fs", SchemeFS, util, traces),
		runUtilCase(scale, "unmanaged", SchemeUnmanaged, equal, traces),
	)
	return res
}

func runUtilCase(scale Scale, stack string, scheme SchemeName, targets []int, traces []*trace.Trace) UtilRow {
	b := Build(CacheSpec{
		Lines:  scale.L2Lines,
		Array:  Array16Way,
		Rank:   futility.CoarseLRU,
		Scheme: scheme,
		Parts:  len(traces),
		Seed:   seedStream(scale.Seed, "util"+stack),
	}, FSFeedbackParams{})
	b.SetTargets(targets)
	results := sim.NewMulticore(b.Cache, sim.DefaultTiming(), traces).Run()
	row := UtilRow{Stack: stack, Targets: targets}
	for _, r := range results {
		row.IPCs = append(row.IPCs, r.IPC())
		row.Throughput += r.IPC()
	}
	return row
}

// Print renders the comparison.
func (r UtilResult) Print(w io.Writer) {
	fprintf(w, "Capacity-management stack (%s scale): mix %v\n", r.Scale.Name, r.Benches)
	fprintf(w, "%-12s %10s   per-thread IPC (targets)\n", "stack", "thruput")
	for _, row := range r.Rows {
		fprintf(w, "%-12s %10.4f  ", row.Stack, row.Throughput)
		for i, ipc := range row.IPCs {
			fprintf(w, " %.3f(%d)", ipc, row.Targets[i])
		}
		fprintf(w, "\n")
	}
}
