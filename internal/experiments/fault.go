package experiments

import (
	"io"
	"strconv"

	"fscache/internal/faultinject"
	"fscache/internal/futility"
	"fscache/internal/trace"
)

// A4 — robustness ablation (DESIGN.md §9): the §V feedback controller is a
// closed loop, so the paper's sizing guarantee should survive state
// corruption, not just steady operation. For each fault class we converge a
// two-partition feedback-FS cache (targets 0.7/0.3, I = 0.5/0.5 — the A1
// configuration), inject the fault, and measure how far occupancy deviates
// and how many insertions the controller needs to pull every partition back
// within ε of target and keep it there.

// FaultEps is the relative occupancy band (±5% of target) a partition must
// re-enter, and stay in, to count as recovered.
const FaultEps = 0.05

// faultTransientFrac sizes the active-fault window for the windowed classes
// (candidate truncation and trace faults) as a fraction of the cache size.
const faultTransientFrac = 0.5

// FaultRow reports one fault class's injection and recovery.
type FaultRow struct {
	Class faultinject.Class
	// PreErr is the mean relative occupancy error just before injection.
	PreErr float64
	// MaxDev is the worst single-partition relative deviation observed
	// after injection.
	MaxDev float64
	// RecoverIns is the number of post-injection insertions until every
	// partition was back within FaultEps of target for good (0 = the band
	// was never left; -1 = did not recover within the budget).
	RecoverIns int
	// RecoverIntervals estimates RecoverIns in feedback-interval units
	// (each partition sees roughly one interval's worth of events per
	// l insertions at equal insertion pressure).
	RecoverIntervals int
	// FinalErr is the mean relative occupancy error at the end of the
	// recovery budget.
	FinalErr float64
	// Recovered reports whether the run ended inside the band.
	Recovered bool
}

// AblationFaultResult is the A4 sweep over every fault class.
type AblationFaultResult struct {
	Scale Scale
	Eps   float64
	Rows  []FaultRow
}

// AblationFault runs A4: inject each fault class into a converged
// feedback-FS cache and measure re-convergence (§V's self-correction
// claim under adversarial state, not just steady operation).
func AblationFault(scale Scale) AblationFaultResult {
	res := AblationFaultResult{Scale: scale, Eps: FaultEps}
	classes := faultinject.Classes()
	rows := make([]FaultRow, len(classes))
	parallelFor(len(classes), func(i int) {
		rows[i] = runFaultCase(scale, classes[i])
	})
	res.Rows = rows
	return res
}

func runFaultCase(scale Scale, class faultinject.Class) FaultRow {
	lines := scale.AnalyticLines
	insert := []float64{0.5, 0.5}
	b := Build(CacheSpec{
		Lines:  lines,
		Array:  ArrayRandom16,
		Rank:   futility.CoarseLRU,
		Scheme: SchemeFS,
		Parts:  2,
		Seed:   seedStream(scale.Seed, "ablfault-"+string(class)),
	}, FSFeedbackParams{})
	t0 := int(0.7 * float64(lines))
	targets := []int{t0, lines - t0}
	b.SetTargets(targets)

	// Always wrap the generators so clean and faulted phases share one
	// stream; zero rates draw nothing from the fault rng.
	gens := make([]trace.Generator, 2)
	faulty := make([]*faultinject.FaultyGenerator, 2)
	for i := range gens {
		inner := mcfGenerator(scale, seedStream(scale.Seed, "ablfault-t"+string(rune('0'+i))), i)
		faulty[i] = faultinject.NewFaultyGenerator(inner,
			seedStream(scale.Seed, "ablfault-f"+string(rune('0'+i))+string(class)),
			faultinject.TraceFaults{})
		gens[i] = faulty[i]
	}
	d := newInsertionDriver(seedStream(scale.Seed, "ablfault-drv-"+string(class)), insert, gens, b.Cache)

	// Converge: fill to the target split, then settle one cache's worth of
	// insertions under steady pressure.
	fillToTargets(d, b, targets)
	for i := 0; i < lines; i++ {
		d.insert()
	}
	row := FaultRow{Class: class, PreErr: meanOccErr(b, targets)}

	// Inject. Windowed classes keep the fault active for a transient
	// window; point classes corrupt state once.
	inj := faultinject.NewInjector(seedStream(scale.Seed, "ablfault-inj-"+string(class)), faultinject.Targets{
		Coarse:   b.Coarse,
		Feedback: b.FSFeedback,
		Cache:    b.Cache,
	})
	tracker := faultinject.NewRecoveryTracker(targets, FaultEps)
	window := 0
	// hold re-applies a stuck-at fault before each insertion of the
	// transient window. A single forced write to a controller register is
	// corrected within one feedback interval (l=16 events) — too fast to
	// even leave the ε band — so the alpha classes model a register stuck
	// at the extreme until the window ends.
	var hold func()
	switch class {
	case faultinject.ClassTSFlip:
		inj.FlipTimestamps(0.5)
	case faultinject.ClassAlphaMax:
		hold = func() { inj.ForceAlphaMax(0) }
		window = int(faultTransientFrac * float64(lines))
	case faultinject.ClassAlphaMin:
		// The floor is adversarial for the small partition: its converged α
		// is high (it must evict aggressively to hold 0.3 of the cache under
		// 0.5 of the insertions), so sticking it at 1 makes it balloon and
		// starve partition 0. Partition 0's converged α is already near 1.
		hold = func() { inj.ForceAlphaMin(1) }
		window = int(faultTransientFrac * float64(lines))
	case faultinject.ClassCandTrunc:
		inj.TruncateCandidates(2)
		window = int(faultTransientFrac * float64(lines))
	case faultinject.ClassTraceDrop:
		setFaultRates(faulty, faultinject.TraceFaults{Drop: 0.5})
		window = int(faultTransientFrac * float64(lines))
	case faultinject.ClassTraceDup:
		setFaultRates(faulty, faultinject.TraceFaults{Dup: 0.5})
		window = int(faultTransientFrac * float64(lines))
	case faultinject.ClassTraceCorrupt:
		setFaultRates(faulty, faultinject.TraceFaults{Corrupt: 0.5})
		window = int(faultTransientFrac * float64(lines))
	default:
		panic("experiments: unknown fault class " + string(class))
	}

	budget := scale.Insertions / 4
	if budget <= window {
		budget = 2 * window
	}
	for i := 0; i < budget; i++ {
		if window > 0 && i == window {
			// End of the transient: clear the standing fault.
			switch class {
			case faultinject.ClassCandTrunc:
				inj.StopTruncation()
			case faultinject.ClassAlphaMax, faultinject.ClassAlphaMin:
				hold = nil
			default:
				setFaultRates(faulty, faultinject.TraceFaults{})
			}
		}
		if hold != nil && i < window {
			hold()
		}
		d.insert()
		tracker.Observe(b.Cache.Sizes())
	}

	row.MaxDev = tracker.MaxDeviation()
	row.RecoverIns = tracker.SettleObservations()
	if interval := b.FSFeedback.Interval(); row.RecoverIns > 0 && interval > 0 {
		row.RecoverIntervals = (row.RecoverIns + interval - 1) / interval
	}
	row.FinalErr = meanOccErr(b, targets)
	row.Recovered = tracker.Recovered()
	return row
}

func setFaultRates(gens []*faultinject.FaultyGenerator, rates faultinject.TraceFaults) {
	for _, g := range gens {
		g.SetRates(rates)
	}
}

// meanOccErr is the mean relative error of the live partition sizes.
func meanOccErr(b *Built, targets []int) float64 {
	sum := 0.0
	for p, tgt := range targets {
		sum += abs(float64(b.Cache.Sizes()[p]-tgt)) / float64(tgt)
	}
	return sum / float64(len(targets))
}

// Print renders A4.
func (r AblationFaultResult) Print(w io.Writer) {
	fprintf(w, "Ablation A4 (%s scale): fault injection into feedback FS (targets 0.7/0.3, I 0.5/0.5, ε=%.0f%%)\n",
		r.Scale.Name, r.Eps*100)
	fprintf(w, "%-14s %8s %8s %11s %10s %8s %10s\n",
		"fault", "preErr", "maxDev", "recoverIns", "intervals", "finalErr", "recovered")
	for _, row := range r.Rows {
		rec := "yes"
		if !row.Recovered {
			rec = "NO"
		}
		ins := "—"
		ivs := "—"
		if row.RecoverIns >= 0 {
			ins = strconv.Itoa(row.RecoverIns)
			ivs = strconv.Itoa(row.RecoverIntervals)
		}
		fprintf(w, "%-14s %8.3f %8.3f %11s %10s %8.3f %10s\n",
			string(row.Class), row.PreErr, row.MaxDev, ins, ivs, row.FinalErr, rec)
	}
}
