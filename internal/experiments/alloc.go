package experiments

import (
	"fmt"
	"io"

	"fscache/internal/alloc"
	"fscache/internal/futility"
	"fscache/internal/scenario"
	"fscache/internal/trace"
)

// Alloc experiment: run one scenario twice under FS enforcement — once on
// the static share-apportioned targets every scenario run uses today, and
// once with targets recomputed online by the internal/alloc epoch loop —
// and compare aggregate miss ratio and occupancy tracking. This is the
// closed measurement→targets loop of ROADMAP item 3; the decision log shows
// targets following workload phases instead of standing still.

// AllocGateMargin is how much worse (absolute miss ratio) the online
// allocator may be than the static split before RunScenarioAlloc fails.
// The allocator spends capacity learning, so exact parity on adversarial
// static-friendly specs is not required — but it must stay within this
// margin, and on drifting specs it should win outright.
const AllocGateMargin = 0.01

// AllocResult compares static and allocator-driven targets on one scenario.
type AllocResult struct {
	Name      string
	Objective string
	Parts     int
	Lines     int
	Accesses  int
	// Static and Alloc are the two runs' outcomes (Scheme is reused for the
	// target mode).
	Static ScenarioRow
	Alloc  ScenarioRow
	// Epochs is the number of allocation epochs closed; Reallocations
	// counts epochs whose decision changed the targets; DriftEpochs counts
	// epochs whose curve divergence exceeded the drift threshold.
	Epochs        int
	Reallocations int
	DriftEpochs   int
	// MinLines is the allocator's per-live-partition floor, re-verified
	// against every logged decision.
	MinLines int
	// Decisions is the allocator's retained decision log (oldest first).
	Decisions []alloc.Decision
	// FinalTargets is the allocation in force when the stream ended.
	FinalTargets []int
}

// RunScenarioAlloc executes the spec under FS with static targets and again
// with the named allocation objective driving targets online. It returns an
// error — failing the harness run — when the allocator violates its floors
// or capacity on any logged decision, or when its aggregate miss ratio
// diverges more than AllocGateMargin above the static split's.
func RunScenarioAlloc(spec *scenario.Spec, dir, objective string) (*AllocResult, error) {
	comp, err := scenario.Compile(spec, dir)
	if err != nil {
		return nil, err
	}
	cfg, err := comp.AllocConfig(objective)
	if err != nil {
		return nil, err
	}
	a := alloc.New(cfg)

	res := &AllocResult{
		Name:      spec.Name,
		Objective: objective,
		Parts:     comp.Parts(),
		Lines:     spec.Cache.Lines,
		Accesses:  spec.Accesses,
		MinLines:  cfg.MinLines,
	}

	res.Static, _ = runScenarioScheme(spec, comp, buildAllocCache(spec, comp), nil)
	res.Static.Scheme = "static"
	res.Alloc = runScenarioAllocScheme(spec, comp, buildAllocCache(spec, comp), a)
	res.Alloc.Scheme = "alloc:" + objective

	log, _ := a.Log()
	res.Decisions = log
	res.Epochs = a.Epoch()
	res.FinalTargets = a.Targets()
	for _, d := range log {
		if d.Changed {
			res.Reallocations++
		}
		if d.Drift {
			res.DriftEpochs++
		}
		sum := 0
		for _, t := range d.Targets {
			sum += t
		}
		if sum > spec.Cache.Lines {
			return nil, fmt.Errorf("scenario %s: epoch %d allocated %d lines of %d",
				spec.Name, d.Epoch, sum, spec.Cache.Lines)
		}
	}
	if res.Alloc.MissRatio > res.Static.MissRatio+AllocGateMargin {
		return nil, fmt.Errorf("scenario %s: %s allocator miss ratio %.4f diverged above static %.4f (margin %.3f)",
			spec.Name, objective, res.Alloc.MissRatio, res.Static.MissRatio, AllocGateMargin)
	}
	return res, nil
}

// buildAllocCache builds the FS-enforced cache both runs use.
func buildAllocCache(spec *scenario.Spec, comp *scenario.Compiled) *Built {
	return Build(CacheSpec{
		Lines:  spec.Cache.Lines,
		Ways:   spec.Cache.Ways,
		Array:  Array16Way,
		Rank:   futility.CoarseLRU,
		Scheme: SchemeFS,
		Parts:  comp.Parts(),
		Seed:   spec.Seed,
	}, FSFeedbackParams{})
}

// runScenarioAllocScheme streams the scenario with the allocator as the
// sole target authority: every access is observed, and fresh epoch targets
// are installed as soon as they appear. Churn events do not set targets —
// the allocator notices dead tenants through decayed sample counts and
// reallocates their capacity itself.
func runScenarioAllocScheme(spec *scenario.Spec, comp *scenario.Compiled, b *Built, a *alloc.Allocator) ScenarioRow {
	parts := comp.Parts()
	targets := a.Targets()
	b.SetTargets(targets)

	stream := comp.NewStream(spec.Cache.Lines)
	warmAt := int(spec.Warmup * float64(spec.Accesses))
	emitted := 0
	occSum, occN := 0.0, 0
	var op scenario.Op
	for stream.Next(&op) {
		if op.Kind == scenario.OpChurn {
			continue
		}
		b.Cache.Access(op.Access.Addr, op.Part, trace.NoNextUse)
		a.Observe(op.Part, op.Access.Addr)
		if tg, ok := a.PollTargets(); ok {
			targets = tg
			b.SetTargets(targets)
		}
		emitted++
		if emitted == warmAt {
			b.Cache.ResetStats()
		}
		if emitted > warmAt && emitted%64 == 0 {
			occSum += scenarioOccErr(b.Cache.Sizes(), targets, parts)
			occN++
		}
	}

	row := ScenarioRow{}
	var hits, misses, forced uint64
	for p := 0; p < parts; p++ {
		s := b.Cache.Stats(p)
		hits += s.Hits
		misses += s.Misses
		forced += s.ForcedEvict
		row.Evictions += s.Evictions
	}
	if t := hits + misses; t > 0 {
		row.MissRatio = float64(misses) / float64(t)
	}
	if row.Evictions > 0 {
		row.ForcedRate = float64(forced) / float64(row.Evictions)
	}
	if occN > 0 {
		row.OccErr = occSum / float64(occN)
	}
	return row
}

// Print implements Printable.
func (r *AllocResult) Print(w io.Writer) {
	fprintf(w, "Alloc %s: %d lines, %d partitions, %d accesses, objective %s\n",
		r.Name, r.Lines, r.Parts, r.Accesses, r.Objective)
	fprintf(w, "  %-14s %10s %10s %12s %12s\n", "targets", "missratio", "occ-err", "forced-rate", "evictions")
	for _, row := range []ScenarioRow{r.Static, r.Alloc} {
		fprintf(w, "  %-14s %10.4f %10.4f %12.6f %12d\n",
			row.Scheme, row.MissRatio, row.OccErr, row.ForcedRate, row.Evictions)
	}
	fprintf(w, "  %d epochs, %d reallocations, %d drift epochs, floor %d lines\n",
		r.Epochs, r.Reallocations, r.DriftEpochs, r.MinLines)
	fprintf(w, "  decision log (epoch, access, drift, targets):\n")
	for _, d := range r.Decisions {
		mark := " "
		if d.Drift {
			mark = "*"
		}
		ch := " "
		if d.Changed {
			ch = "!"
		}
		fprintf(w, "   %s%s e%-3d @%-9d div %.3f  %s\n",
			mark, ch, d.Epoch, d.Access, d.Divergence, targetsString(d.Targets))
	}
}

// targetsString renders a target vector, eliding the middle of very wide
// (replicated many-tenant) configurations.
func targetsString(tg []int) string {
	const maxShown = 8
	if len(tg) <= maxShown {
		return fmt.Sprint(tg)
	}
	head := fmt.Sprint(tg[:maxShown])
	return fmt.Sprintf("%s …+%d parts]", head[:len(head)-1], len(tg)-maxShown)
}
