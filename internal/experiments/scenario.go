package experiments

import (
	"fmt"
	"io"

	"fscache/internal/futility"
	"fscache/internal/scenario"
	"fscache/internal/trace"
)

// Scenario experiment: run one declarative scenario spec (internal/scenario)
// under FS and the PF/Vantage baselines on identical access streams, and
// counterfactually re-rank the FS run's recorded decision trace under each
// baseline. The result is the ROADMAP item 5 comparison table: per-scheme
// occupancy error, miss ratio and forced-eviction rate, plus per-baseline
// divergent-eviction rates against the recorded FS decisions.

// ScenarioMaxRecorded bounds the FS decision trace kept in memory per
// scenario run; decisions beyond it are counted but dropped, and the
// counterfactual rates describe the recorded prefix.
const ScenarioMaxRecorded = 1 << 16

// ScenarioRow is one scheme's outcome on the scenario's access stream.
type ScenarioRow struct {
	Scheme string
	// MissRatio is misses/accesses after warmup.
	MissRatio float64
	// OccErr is the time-averaged mean relative occupancy error
	// |actual−target|/target over live partitions with nonzero targets,
	// sampled every 64 accesses after warmup.
	OccErr float64
	// ForcedRate is forced evictions per eviction after warmup.
	ForcedRate float64
	// Evictions counts post-warmup evictions.
	Evictions uint64
}

// ScenarioResult is the per-scenario comparison table.
type ScenarioResult struct {
	Name     string
	Parts    int
	Lines    int
	Ways     int
	Accesses int
	// Emitted is the access count actually streamed (less than Accesses
	// only when churn killed every client with none scheduled to return).
	Emitted int
	Warmup  float64
	Churns  int
	Rows    []ScenarioRow
	// Recorded and Skipped report the FS decision trace size and the
	// decisions dropped by ScenarioMaxRecorded.
	Recorded int
	Skipped  uint64
	// Counterfactuals re-rank the recorded FS decisions: fs (the self-check
	// oracle, which must show zero divergence), pf and vantage.
	Counterfactuals []scenario.Counterfactual
}

// ScenarioSchemes are the schemes every scenario runs under, in order.
func ScenarioSchemes() []SchemeName {
	return []SchemeName{SchemeFS, SchemePF, SchemeVantage}
}

// RunScenario executes the spec under every scheme. dir resolves relative
// trace paths in the spec (usually the spec file's directory).
func RunScenario(spec *scenario.Spec, dir string) (*ScenarioResult, error) {
	comp, err := scenario.Compile(spec, dir)
	if err != nil {
		return nil, err
	}
	parts := comp.Parts()
	res := &ScenarioResult{
		Name:     spec.Name,
		Parts:    parts,
		Lines:    spec.Cache.Lines,
		Ways:     spec.Cache.Ways,
		Accesses: spec.Accesses,
		Warmup:   spec.Warmup,
		Churns:   len(spec.Churn),
	}

	var fsTrace *scenario.DecisionTrace
	for _, scheme := range ScenarioSchemes() {
		b := Build(CacheSpec{
			Lines:  spec.Cache.Lines,
			Ways:   spec.Cache.Ways,
			Array:  Array16Way,
			Rank:   futility.CoarseLRU, // the hardware-realistic default
			Scheme: scheme,
			Parts:  parts,
			Seed:   spec.Seed,
		}, FSFeedbackParams{})
		var rec *scenario.Recorder
		if scheme == SchemeFS {
			rec = scenario.NewRecorder(b.Cache, b.FSFeedback, ScenarioMaxRecorded)
		}
		row, emitted := runScenarioScheme(spec, comp, b, rec)
		res.Rows = append(res.Rows, row)
		res.Emitted = emitted
		if rec != nil {
			fsTrace = rec.Trace()
			res.Recorded = len(fsTrace.Decisions)
			res.Skipped = rec.Skipped()
		}
	}

	self := fsTrace.ReplayFS()
	// The self-replay is the lockstep oracle for the decision-trace path:
	// any divergence means the recorder dropped an operand the FS rule
	// consumed, so the whole counterfactual table would be untrustworthy.
	// Fail the experiment instead of printing a poisoned table.
	if self.Divergent != 0 {
		return nil, fmt.Errorf("scenario %s: FS self-replay diverged on %d of %d recorded decisions",
			spec.Name, self.Divergent, self.Decisions)
	}
	res.Counterfactuals = append(res.Counterfactuals,
		self,
		scenario.NewPFReplayer(parts).Replay(fsTrace),
		scenario.NewVantageReplayer(parts).Replay(fsTrace),
	)
	return res, nil
}

// runScenarioScheme streams the scenario into one built cache.
func runScenarioScheme(spec *scenario.Spec, comp *scenario.Compiled, b *Built, rec *scenario.Recorder) (ScenarioRow, int) {
	parts := comp.Parts()
	targets := comp.Targets(spec.Cache.Lines, comp.InitialLive())
	b.SetTargets(targets)

	stream := comp.NewStream(spec.Cache.Lines)
	warmAt := int(spec.Warmup * float64(spec.Accesses))
	emitted := 0
	occSum, occN := 0.0, 0
	var op scenario.Op
	for stream.Next(&op) {
		if op.Kind == scenario.OpChurn {
			targets = op.Targets
			b.SetTargets(targets)
			continue
		}
		if emitted == warmAt {
			b.Cache.ResetStats()
			if rec != nil {
				b.Cache.SetDecisionObserver(rec.Observe)
			}
		}
		b.Cache.Access(op.Access.Addr, op.Part, trace.NoNextUse)
		emitted++
		if emitted > warmAt && emitted%64 == 0 {
			occSum += scenarioOccErr(b.Cache.Sizes(), targets, parts)
			occN++
		}
	}
	b.Cache.SetDecisionObserver(nil)

	row := ScenarioRow{Scheme: string(schemeName(b))}
	var hits, misses, forced uint64
	for p := 0; p < parts; p++ {
		s := b.Cache.Stats(p)
		hits += s.Hits
		misses += s.Misses
		forced += s.ForcedEvict
		row.Evictions += s.Evictions
	}
	// Scheme-private pseudo-partitions (Vantage's unmanaged region) never
	// own lines, but forced-eviction accounting follows the decision
	// partition — include them.
	for p := parts; p < b.TotalParts; p++ {
		s := b.Cache.Stats(p)
		forced += s.ForcedEvict
		row.Evictions += s.Evictions
	}
	if t := hits + misses; t > 0 {
		row.MissRatio = float64(misses) / float64(t)
	}
	if row.Evictions > 0 {
		row.ForcedRate = float64(forced) / float64(row.Evictions)
	}
	if occN > 0 {
		row.OccErr = occSum / float64(occN)
	}
	return row, emitted
}

// schemeName recovers the display name from the built scheme handles.
func schemeName(b *Built) SchemeName {
	switch {
	case b.FSFeedback != nil:
		return SchemeFS
	case b.Vantage != nil:
		return SchemeVantage
	default:
		return SchemePF
	}
}

// scenarioOccErr returns the mean relative occupancy error over partitions
// with nonzero targets (zero-target partitions are dead tenants washing
// out; their absolute size is reported through churn tests instead).
func scenarioOccErr(sizes, targets []int, parts int) float64 {
	sum, n := 0.0, 0
	for p := 0; p < parts; p++ {
		if targets[p] <= 0 {
			continue
		}
		d := sizes[p] - targets[p]
		if d < 0 {
			d = -d
		}
		sum += float64(d) / float64(targets[p])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Print implements Printable.
func (r *ScenarioResult) Print(w io.Writer) {
	fprintf(w, "Scenario %s: %d lines, %d-way, %d partitions, %d accesses (warmup %.0f%%, %d churn events)\n",
		r.Name, r.Lines, r.Ways, r.Parts, r.Emitted, r.Warmup*100, r.Churns)
	fprintf(w, "  %-10s %10s %10s %12s %12s\n", "scheme", "missratio", "occ-err", "forced-rate", "evictions")
	for _, row := range r.Rows {
		fprintf(w, "  %-10s %10.4f %10.4f %12.6f %12d\n",
			row.Scheme, row.MissRatio, row.OccErr, row.ForcedRate, row.Evictions)
	}
	fprintf(w, "  counterfactual re-ranking of %d recorded FS decisions (%d dropped by cap):\n",
		r.Recorded, r.Skipped)
	fprintf(w, "  %-10s %10s %10s %12s %12s\n", "scheme", "divergent", "div-rate", "part-div", "forced-rate")
	for _, cf := range r.Counterfactuals {
		name := cf.Scheme
		if name == "fs" {
			name = "fs(self)"
		}
		fprintf(w, "  %-10s %10d %10.4f %12.4f %12.6f\n",
			name, cf.Divergent, cf.DivergenceRate(), cf.PartDivergenceRate(), cf.ForcedRate())
	}
}
