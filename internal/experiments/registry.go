package experiments

import (
	"fmt"
	"io"
	"sort"

	"fscache/internal/futility"
)

// Printable is implemented by every experiment result.
type Printable interface {
	Print(w io.Writer)
}

// Runner executes one experiment at a scale.
type Runner struct {
	// ID matches DESIGN.md's experiment index.
	ID string
	// Desc is a one-line description.
	Desc string
	// Run executes the experiment and returns the printable result.
	Run func(scale Scale) Printable
}

// Registry returns every experiment in DESIGN.md's index order.
func Registry() []Runner {
	return []Runner{
		{"table2", "Table II: system configuration", func(s Scale) Printable { return Table2(s) }},
		{"fig2a", "Fig.2a: PF associativity CDF for mcf, N=1..32", func(s Scale) Printable { return Fig2a(s, "mcf") }},
		{"fig2bc", "Fig.2b/2c: PF misses and IPC across 8 benchmarks", func(s Scale) Printable { return Fig2bc(s, nil) }},
		{"fig3", "Fig.3: analytic scaling factors (Eq. 1)", func(s Scale) Printable { return Fig3() }},
		{"fig4", "Fig.4: FS vs PF associativity CDFs", func(s Scale) Printable { return Fig4(s) }},
		{"fig5", "Fig.5: FS vs PF size deviation", func(s Scale) Printable { return Fig5(s) }},
		{"fig6", "Fig.6: fully-assoc vs direct-mapped speedups (OPT, LRU)", func(s Scale) Printable { return Fig6(s) }},
		{"fig7", "Fig.7/8: QoS occupancy, AEF and performance, 32 threads", func(s Scale) Printable { return Fig7(s, nil, nil) }},
		{"sens-l", "§VIII: sensitivity to interval length l", func(s Scale) Printable { return SensInterval(s) }},
		{"sens-delta", "§VIII: sensitivity to changing ratio Δα", func(s Scale) Printable { return SensDelta(s) }},
		{"abl-fs", "A1: analytic FS vs feedback FS", func(s Scale) Printable { return AblationFS(s) }},
		{"abl-r", "A2: AEF vs candidate count R", func(s Scale) Printable { return AblationR(s) }},
		{"abl-way", "A3: placement (way-partitioning) vs replacement (FS)", func(s Scale) Printable { return AblationWay(s) }},
		{"abl-fault", "A4: fault injection — feedback FS re-convergence per fault class", func(s Scale) Printable { return AblationFault(s) }},
		{"resize", "§II property 1: smooth resizing after a target flip", func(s Scale) Printable { return Resize(s) }},
		{"util", "§II-A stack: UMON utility allocation over FS enforcement", func(s Scale) Printable { return Util(s) }},
	}
}

// ByID returns the named runner.
func ByID(id string) (Runner, error) {
	var ids []string
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return Runner{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// Table2Result prints the simulated system configuration (Table II).
type Table2Result struct {
	Scale Scale
}

// Table2 returns the configuration dump.
func Table2(scale Scale) Table2Result { return Table2Result{Scale: scale} }

// Print implements Printable.
func (t Table2Result) Print(w io.Writer) {
	s := t.Scale
	fprintf(w, "Table II: system configuration (%s scale)\n", s.Name)
	fprintf(w, "  Cores   %d × 2 GHz in-order (trace-driven)\n", Fig7Threads)
	fprintf(w, "  L1 $s   split I/D, private, 32 KB, 4-way, 64 B lines (D modeled)\n")
	fprintf(w, "  L2 $    shared 16-way set associative, XOR indexing, %d lines (%d KB), 8-cycle access\n",
		s.L2Lines, s.L2Lines*64/1024)
	fprintf(w, "          futility ranking: %v or %v; NUCA L1→L2 4 cycles avg\n",
		futility.CoarseLRU, futility.OPT)
	fprintf(w, "  MCU     200-cycle zero-load latency, 32 GB/s peak bandwidth (4 cycles/line)\n")
	fprintf(w, "  QoS     subject guarantee %d lines (%d KB); trace length %d L2 accesses/thread\n",
		s.SubjectLines, s.SubjectLines*64/1024, s.TraceLen)
}
