package experiments

import (
	"io"

	"fscache/internal/analytic"
	"fscache/internal/futility"
	"fscache/internal/trace"
)

// Reproduction-specific ablations (DESIGN.md §7):
//
// A1 — what the practical design gives up: FS with exact futility and
// analytically solved fixed α versus the feedback design on coarse 8-bit
// timestamps, on the same workload.
//
// A2 — associativity versus candidate count R: PF collapses as partitions
// approach R while FS's associativity is insensitive to partition count
// (§IV-C), swept over random-candidates caches with varying R.

// AblationFSRow compares one scheme variant.
type AblationFSRow struct {
	Variant string
	AEF0    float64
	AEF1    float64
	// OccErr is mean |occupancy − target| / target over both partitions.
	OccErr float64
}

// AblationFSResult is the A1 comparison.
type AblationFSResult struct {
	Scale Scale
	Rows  []AblationFSRow
}

// AblationFS runs A1: two mcf threads, I = 0.5/0.5, targets 0.7/0.3.
func AblationFS(scale Scale) AblationFSResult {
	res := AblationFSResult{Scale: scale}
	insert := []float64{0.5, 0.5}
	sizes := []float64{0.7, 0.3}
	for _, variant := range []struct {
		name   string
		scheme SchemeName
		rank   futility.Kind
	}{
		{"fs-analytic(exact)", "fs-fixed", futility.LRU},
		{"fs-feedback(coarse)", SchemeFS, futility.CoarseLRU},
	} {
		lines := scale.AnalyticLines
		b := Build(CacheSpec{
			Lines:  lines,
			Array:  ArrayRandom16,
			Rank:   variant.rank,
			Scheme: variant.scheme,
			Parts:  2,
			Seed:   seedStream(scale.Seed, "ablfs"+variant.name),
		}, FSFeedbackParams{})
		if b.FSFixed != nil {
			a, err := analytic.ScalingFactors(insert, sizes, 16)
			if err != nil {
				panic("experiments: scaling factors: " + err.Error())
			}
			b.FSFixed.SetAlphas(a)
		}
		t0 := int(sizes[0] * float64(lines))
		targets := []int{t0, lines - t0}
		b.SetTargets(targets)
		gens := []trace.Generator{
			mcfGenerator(scale, seedStream(scale.Seed, "ablfs-t0"), 0),
			mcfGenerator(scale, seedStream(scale.Seed, "ablfs-t1"), 1),
		}
		d := newInsertionDriver(seedStream(scale.Seed, "ablfs-drv"), insert, gens, b.Cache)
		fillToTargets(d, b, targets)
		for i := 0; i < lines; i++ {
			d.insert()
		}
		b.Cache.ResetStats()
		for i := 0; i < scale.Insertions/2; i++ {
			d.insert()
		}
		occErr := (abs(b.Cache.MeanOccupancy(0)-float64(t0))/float64(t0) +
			abs(b.Cache.MeanOccupancy(1)-float64(lines-t0))/float64(lines-t0)) / 2
		res.Rows = append(res.Rows, AblationFSRow{
			Variant: variant.name,
			AEF0:    b.Cache.Stats(0).AEF(),
			AEF1:    b.Cache.Stats(1).AEF(),
			OccErr:  occErr,
		})
	}
	return res
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Print renders A1.
func (r AblationFSResult) Print(w io.Writer) {
	fprintf(w, "Ablation A1 (%s scale): analytic FS vs feedback FS (targets 0.7/0.3, I 0.5/0.5)\n", r.Scale.Name)
	fprintf(w, "%-22s %8s %8s %8s\n", "variant", "AEF0", "AEF1", "occErr")
	for _, row := range r.Rows {
		fprintf(w, "%-22s %8.3f %8.3f %8.3f\n", row.Variant, row.AEF0, row.AEF1, row.OccErr)
	}
}

// AblationRRow is one candidate-count sample.
type AblationRRow struct {
	R      int
	PFAEF  float64
	FSAEF  float64
	PFOcc  float64
	FSOcc  float64
	PFFail bool // R=1 cannot enforce partitioning at all
}

// AblationRResult is the A2 sweep.
type AblationRResult struct {
	Scale Scale
	Parts int
	Rows  []AblationRRow
}

// AblationRCounts is the swept candidate-count grid.
var AblationRCounts = []int{2, 4, 8, 16, 32, 64}

// AblationR runs A2: 8 equal partitions, equal insertion pressure, on
// random-candidates caches with varying R.
func AblationR(scale Scale) AblationRResult {
	const parts = 8
	res := AblationRResult{Scale: scale, Parts: parts}
	for _, r := range AblationRCounts {
		row := AblationRRow{R: r}
		for _, scheme := range []SchemeName{SchemePF, SchemeFS} {
			aef, occ := runAblationRCase(scale, scheme, parts, r)
			if scheme == SchemePF {
				row.PFAEF, row.PFOcc = aef, occ
			} else {
				row.FSAEF, row.FSOcc = aef, occ
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runAblationRCase(scale Scale, scheme SchemeName, parts, r int) (aef, occ float64) {
	lines := scale.AnalyticLines
	b := Build(CacheSpec{
		Lines:   lines,
		Array:   ArrayRandom16,
		RandomR: r,
		Rank:    futility.CoarseLRU,
		Scheme:  scheme,
		Parts:   parts,
		Seed:    seedStream(scale.Seed, "ablr-build"),
	}, FSFeedbackParams{})
	targets := make([]int, parts)
	probs := make([]float64, parts)
	for i := range targets {
		targets[i] = lines / parts
		probs[i] = 1 / float64(parts)
	}
	b.SetTargets(targets)
	gens := make([]trace.Generator, parts)
	for i := range gens {
		gens[i] = mcfGenerator(scale, seedStream(scale.Seed, "ablr"), i)
	}
	d := newInsertionDriver(seedStream(scale.Seed, "ablr-drv"), probs, gens, b.Cache)
	fillToTargets(d, b, targets)
	for i := 0; i < lines; i++ {
		d.insert()
	}
	b.Cache.ResetStats()
	for i := 0; i < scale.Insertions/3; i++ {
		d.insert()
	}
	return b.Cache.Stats(0).AEF(), b.Cache.MeanOccupancy(0) / float64(lines/parts)
}

// Print renders A2.
func (r AblationRResult) Print(w io.Writer) {
	fprintf(w, "Ablation A2 (%s scale): AEF vs candidate count R, %d equal partitions\n", r.Scale.Name, r.Parts)
	fprintf(w, "%6s %8s %8s %9s %9s\n", "R", "PF-AEF", "FS-AEF", "PF-occ", "FS-occ")
	for _, row := range r.Rows {
		fprintf(w, "%6d %8.3f %8.3f %9.3f %9.3f\n", row.R, row.PFAEF, row.FSAEF, row.PFOcc, row.FSOcc)
	}
}

// AblationWayRow compares way-partitioning against FS at one partition
// count.
type AblationWayRow struct {
	Parts   int
	WayAEF  float64
	FSAEF   float64
	WayOcc  float64 // partition 0 occupancy / target
	FSOcc   float64
	Skipped bool // way-partitioning cannot host more partitions than ways
}

// AblationWayResult is the placement-vs-replacement comparison (§II-B).
type AblationWayResult struct {
	Scale Scale
	Rows  []AblationWayRow
}

// AblationWayParts is the swept partition-count grid. 32 exceeds the 16
// ways and demonstrates placement's scalability wall.
var AblationWayParts = []int{2, 4, 8, 16, 32}

// AblationWay compares way-partitioning with FS on a 16-way cache under a
// deliberately uneven allocation (partition 0 gets 1/(2N) of the cache,
// stressing placement granularity) with equal insertion pressure.
func AblationWay(scale Scale) AblationWayResult {
	res := AblationWayResult{Scale: scale}
	for _, parts := range AblationWayParts {
		row := AblationWayRow{Parts: parts}
		if parts > 16 {
			row.Skipped = true
			res.Rows = append(res.Rows, row)
			continue
		}
		for _, scheme := range []SchemeName{SchemeWayPart, SchemeFS} {
			aef, occ := runAblationWayCase(scale, scheme, parts)
			if scheme == SchemeWayPart {
				row.WayAEF, row.WayOcc = aef, occ
			} else {
				row.FSAEF, row.FSOcc = aef, occ
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runAblationWayCase(scale Scale, scheme SchemeName, parts int) (aef, occ float64) {
	lines := scale.AnalyticLines
	b := Build(CacheSpec{
		Lines:  lines,
		Array:  Array16Way,
		Rank:   futility.CoarseLRU,
		Scheme: scheme,
		Parts:  parts,
		Seed:   seedStream(scale.Seed, "ablway"),
	}, FSFeedbackParams{})
	// Partition 0 gets half an equal share; the remainder is split evenly.
	targets := make([]int, parts)
	probs := make([]float64, parts)
	targets[0] = lines / parts / 2
	rest := (lines - targets[0]) / (parts - 1)
	for i := 1; i < parts; i++ {
		targets[i] = rest
	}
	for i := range probs {
		probs[i] = 1 / float64(parts)
	}
	b.SetTargets(targets)
	gens := make([]trace.Generator, parts)
	for i := range gens {
		gens[i] = mcfGenerator(scale, seedStream(scale.Seed, "ablway-g"), i)
	}
	d := newInsertionDriver(seedStream(scale.Seed, "ablway-drv"), probs, gens, b.Cache)
	fillToTargets(d, b, targets)
	for i := 0; i < lines; i++ {
		d.insert()
	}
	b.Cache.ResetStats()
	for i := 0; i < scale.Insertions/3; i++ {
		d.insert()
	}
	return b.Cache.Stats(0).AEF(), b.Cache.MeanOccupancy(0) / float64(targets[0])
}

// Print renders the placement-vs-replacement comparison.
func (r AblationWayResult) Print(w io.Writer) {
	fprintf(w, "Ablation A3 (%s scale): way-partitioning vs FS, 16-way cache, partition 0 at half share\n", r.Scale.Name)
	fprintf(w, "%6s %9s %9s %9s %9s\n", "N", "way-AEF", "FS-AEF", "way-occ", "FS-occ")
	for _, row := range r.Rows {
		if row.Skipped {
			fprintf(w, "%6d %9s (more partitions than ways)\n", row.Parts, "—")
			continue
		}
		fprintf(w, "%6d %9.3f %9.3f %9.3f %9.3f\n",
			row.Parts, row.WayAEF, row.FSAEF, row.WayOcc, row.FSOcc)
	}
}
