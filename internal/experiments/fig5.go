package experiments

import (
	"io"

	"fscache/internal/analytic"
	"fscache/internal/futility"
	"fscache/internal/trace"
)

// Fig. 5: size-deviation distributions of FS versus PF on the analytical
// cache, equal target split, insertion-rate splits I₁ ∈ {0.9, 0.5} (the
// paper's 9/1 and 5/5). PF's deviation is near zero (MAD < 1); FS trades a
// bounded random-walk deviation (worst at I₁ = 0.5, where I₁(1−I₁) peaks)
// for its associativity preservation. The birth–death model's predicted
// MAD is reported alongside the measurement.

// Fig5Row is one (scheme, I₁) sizing measurement for partition 1.
type Fig5Row struct {
	Scheme SchemeName
	I1     float64
	MAD    float64
	// ModelMAD is the analytic birth–death prediction (FS rows only).
	ModelMAD float64
	// DevValues/DevCDF give P(|deviation| ≤ v).
	DevValues []int
	DevCDF    []float64
}

// Fig5Result collects the comparison.
type Fig5Result struct {
	Scale Scale
	Rows  []Fig5Row
}

// Fig5 runs the comparison.
func Fig5(scale Scale) Fig5Result {
	res := Fig5Result{Scale: scale}
	for _, i1 := range []float64{0.9, 0.5} {
		for _, scheme := range []SchemeName{"fs-fixed", SchemePF} {
			res.Rows = append(res.Rows, runFig5Case(scale, scheme, i1))
		}
	}
	return res
}

func runFig5Case(scale Scale, scheme SchemeName, i1 float64) Fig5Row {
	lines := scale.AnalyticLines
	insert := []float64{i1, 1 - i1}
	sizes := []float64{0.5, 0.5}
	b := Build(CacheSpec{
		Lines:          lines,
		Array:          ArrayRandom16,
		Rank:           futility.LRU,
		Scheme:         scheme,
		Parts:          2,
		Seed:           seedStream(scale.Seed, "fig5"+string(scheme)),
		TrackDeviation: true,
	}, FSFeedbackParams{})
	row := Fig5Row{Scheme: scheme, I1: i1}
	if b.FSFixed != nil {
		a, err := analytic.ScalingFactors(insert, sizes, 16)
		if err != nil {
			panic("experiments: scaling factors: " + err.Error())
		}
		b.FSFixed.SetAlphas(a)
		model := &analytic.SizingModel{
			TotalLines: lines,
			Insert1:    i1,
			Alpha2:     a[1] / a[0],
			R:          16,
		}
		// The model normalizes α₁ = 1; when the solver scaled partition 1,
		// rescale so the model's unscaled partition matches.
		_, mad, _ := model.DeviationStats(lines/2, lines/8, nil)
		row.ModelMAD = mad
	}
	targets := []int{lines / 2, lines / 2}
	b.SetTargets(targets)

	// Pure insertion process: fresh lines, no reuse — sizing dynamics only.
	gens := []trace.Generator{newFreshLineGenerator(0), newFreshLineGenerator(1)}
	d := newInsertionDriver(seedStream(scale.Seed, "fig5-drv"), insert, gens, b.Cache)
	fillToTargets(d, b, targets)
	for i := 0; i < lines; i++ {
		d.insert()
	}
	b.Cache.ResetStats()
	for i := 0; i < scale.Insertions; i++ {
		d.insert()
	}
	dev := b.Cache.Stats(0).Deviation
	row.MAD = dev.MAD()
	row.DevValues, row.DevCDF = dev.AbsCDF()
	return row
}

// Print renders one row per (scheme, I₁) with MAD and deviation quantiles.
func (r Fig5Result) Print(w io.Writer) {
	fprintf(w, "Fig.5 (%s scale): size deviation of partition 1, equal split\n", r.Scale.Name)
	fprintf(w, "%-10s %6s %10s %10s %8s %8s\n", "scheme", "I1", "MAD", "modelMAD", "p50", "p99")
	for _, row := range r.Rows {
		p50 := quantileOf(row.DevValues, row.DevCDF, 0.5)
		p99 := quantileOf(row.DevValues, row.DevCDF, 0.99)
		fprintf(w, "%-10s %6.2f %10.2f %10.2f %8d %8d\n",
			row.Scheme, row.I1, row.MAD, row.ModelMAD, p50, p99)
	}
}

func quantileOf(values []int, cdf []float64, q float64) int {
	for i, c := range cdf {
		if c >= q {
			return values[i]
		}
	}
	if len(values) == 0 {
		return 0
	}
	return values[len(values)-1]
}
