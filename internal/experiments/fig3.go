package experiments

import (
	"io"

	"fscache/internal/analytic"
)

// Fig. 3: analytical scaling factors of partition 2 (α₂) as its size
// fraction S₂ and insertion rate I₂ vary, with R = 16 candidates
// (Equation (1)).

// Fig3Point is one curve sample.
type Fig3Point struct {
	I2, S2 float64
	Alpha2 float64
	// Feasible is false where Equation (1) has no positive solution.
	Feasible bool
}

// Fig3Result is the α₂ grid.
type Fig3Result struct {
	R      int
	Points []Fig3Point
}

// Fig3 computes the paper's grid: I₂ ∈ {0.6, 0.7, 0.8, 0.9},
// S₂ ∈ {0.20, 0.25, 0.30, 0.35, 0.40}.
func Fig3() Fig3Result {
	const r = 16
	res := Fig3Result{R: r}
	for _, i2 := range []float64{0.6, 0.7, 0.8, 0.9} {
		for _, s2 := range []float64{0.20, 0.25, 0.30, 0.35, 0.40} {
			a2, err := analytic.ScalingFactor2P(1-i2, 1-s2, r)
			res.Points = append(res.Points, Fig3Point{
				I2: i2, S2: s2, Alpha2: a2, Feasible: err == nil,
			})
		}
	}
	return res
}

// Print renders the grid as one row per (I₂, S₂).
func (r Fig3Result) Print(w io.Writer) {
	fprintf(w, "Fig.3: scaling factor α₂ from Eq.(1), R=%d\n", r.R)
	fprintf(w, "%6s %6s %10s\n", "I2", "S2", "alpha2")
	for _, p := range r.Points {
		if !p.Feasible {
			fprintf(w, "%6.2f %6.2f %10s\n", p.I2, p.S2, "infeasible")
			continue
		}
		fprintf(w, "%6.2f %6.2f %10.3f\n", p.I2, p.S2, p.Alpha2)
	}
}
