package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fscache/internal/futility"
)

// tiny returns an even smaller scale than Quick for unit tests.
func tiny() Scale {
	return Scale{
		Name:           "tiny",
		L2Lines:        8192,
		PartLines:      1024,
		SubjectLines:   256,
		TraceLen:       6000,
		AnalyticLines:  4096,
		Insertions:     60000,
		L1Lines:        128,
		WorkloadShrink: 8,
		Seed:           20140621,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table2", "fig2a", "fig2bc", "fig3", "fig4", "fig5",
		"fig6", "fig7", "sens-l", "sens-delta", "abl-fs", "abl-r", "abl-way", "abl-fault",
		"resize", "util"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, r := range reg {
		if r.ID != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, r.ID, want[i])
		}
		if r.Desc == "" || r.Run == nil {
			t.Errorf("registry entry %q incomplete", r.ID)
		}
	}
	if _, err := ByID("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable2Prints(t *testing.T) {
	var buf bytes.Buffer
	Table2(Quick()).Print(&buf)
	for _, want := range []string{"Table II", "16-way", "32 GB/s"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

// Fig. 2a's claim: PF's AEF decreases monotonically-ish with N, from near
// the R/(R+1) optimum toward the 0.5 worst case.
func TestFig2aShape(t *testing.T) {
	s := tiny()
	res := Fig2a(s, "mcf")
	if len(res.Rows) != len(Fig2PartCounts) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	if first.N != 1 || last.N != 32 {
		t.Fatalf("row order wrong: %v..%v", first.N, last.N)
	}
	if first.AEF < 0.85 {
		t.Errorf("N=1 AEF = %v, want near 0.94", first.AEF)
	}
	if last.AEF > first.AEF-0.2 {
		t.Errorf("N=32 AEF = %v did not collapse from %v", last.AEF, first.AEF)
	}
	if last.AEF < 0.45 {
		t.Errorf("N=32 AEF = %v below the 0.5 worst case", last.AEF)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "mcf") {
		t.Error("print output missing benchmark name")
	}
}

// Fig. 2b/2c's claim: for the associativity-sensitive mcf, misses grow and
// IPC drops as N grows; for streaming lbm both stay nearly flat.
func TestFig2bcShape(t *testing.T) {
	s := tiny()
	res := Fig2bc(s, []string{"mcf", "lbm"})
	byKey := map[string]Fig2Row{}
	for _, row := range res.Rows {
		byKey[row.Bench+string(rune(row.N))] = row
	}
	mcf1 := byKey["mcf"+string(rune(1))]
	mcf32 := byKey["mcf"+string(rune(32))]
	lbm1 := byKey["lbm"+string(rune(1))]
	lbm32 := byKey["lbm"+string(rune(32))]
	mcfGrowth := float64(mcf32.Misses) / float64(mcf1.Misses)
	lbmGrowth := float64(lbm32.Misses) / float64(lbm1.Misses)
	if mcfGrowth < 1.05 {
		t.Errorf("mcf misses grew only %.3f× from N=1 to N=32", mcfGrowth)
	}
	if lbmGrowth > 1.05 {
		t.Errorf("lbm misses grew %.3f×, want flat", lbmGrowth)
	}
	if mcf32.IPC >= mcf1.IPC {
		t.Errorf("mcf IPC did not drop: %v → %v", mcf1.IPC, mcf32.IPC)
	}
	if mcfGrowth <= lbmGrowth {
		t.Errorf("sensitivity ordering violated: mcf %.3f ≤ lbm %.3f", mcfGrowth, lbmGrowth)
	}
}

func TestFig3Values(t *testing.T) {
	res := Fig3()
	if len(res.Points) != 20 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// α₂ decreases along S₂ for fixed I₂ and increases along I₂.
	for i := 0; i < 20; i += 5 {
		for j := i + 1; j < i+5; j++ {
			if res.Points[j].Feasible && res.Points[j-1].Feasible &&
				res.Points[j].Alpha2 >= res.Points[j-1].Alpha2 {
				t.Fatalf("α₂ not decreasing in S₂ at %d", j)
			}
		}
	}
	// Top-left anchor ≈ 2.8.
	var anchor Fig3Point
	for _, p := range res.Points {
		if p.I2 == 0.9 && p.S2 == 0.20 {
			anchor = p
		}
	}
	if !anchor.Feasible || anchor.Alpha2 < 2.5 || anchor.Alpha2 > 3.0 {
		t.Fatalf("anchor α₂ = %v, want ≈2.8", anchor.Alpha2)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "alpha2") {
		t.Error("print missing header")
	}
}

// Fig. 4's claims: (1) FS's unscaled big partition keeps near-unpartitioned
// associativity; (2) PF's small partition is much worse than FS's; (3) FS
// sizes stay near targets.
func TestFig4Shape(t *testing.T) {
	res := Fig4(tiny())
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	get := func(scheme SchemeName, s1 float64, part int) Fig4Row {
		for _, r := range res.Rows {
			if r.Scheme == scheme && r.S1 == s1 && r.Part == part {
				return r
			}
		}
		t.Fatalf("missing row %v %v %v", scheme, s1, part)
		return Fig4Row{}
	}
	fsBig := get("fs-fixed", 0.9, 0)
	fsSmall := get("fs-fixed", 0.9, 1)
	pfSmall := get(SchemePF, 0.9, 1)
	if fsBig.AEF < 0.85 {
		t.Errorf("FS unscaled partition AEF = %v, want ≈0.94", fsBig.AEF)
	}
	if fsSmall.AEF <= pfSmall.AEF {
		t.Errorf("FS small-partition AEF %v not above PF's %v", fsSmall.AEF, pfSmall.AEF)
	}
	if fsBig.Size < 0.82 || fsBig.Size > 0.98 {
		t.Errorf("FS big partition size fraction %v, want ≈0.9", fsBig.Size)
	}
}

// Fig. 5's claims: PF's MAD ≈ 0; FS's MAD is bounded and worse at I₁ = 0.5
// than at I₁ = 0.9; the analytic model is in the right range.
func TestFig5Shape(t *testing.T) {
	res := Fig5(tiny())
	get := func(scheme SchemeName, i1 float64) Fig5Row {
		for _, r := range res.Rows {
			if r.Scheme == scheme && r.I1 == i1 {
				return r
			}
		}
		t.Fatalf("missing row %v %v", scheme, i1)
		return Fig5Row{}
	}
	pf5 := get(SchemePF, 0.5)
	fs5 := get("fs-fixed", 0.5)
	fs9 := get("fs-fixed", 0.9)
	if pf5.MAD > 2 {
		t.Errorf("PF MAD = %v, want < 2", pf5.MAD)
	}
	if fs5.MAD <= pf5.MAD {
		t.Errorf("FS MAD %v not above PF %v", fs5.MAD, pf5.MAD)
	}
	if fs9.MAD >= fs5.MAD {
		t.Errorf("MAD(I1=0.9)=%v not below MAD(I1=0.5)=%v", fs9.MAD, fs5.MAD)
	}
	// Deviation stays a small fraction of the partition.
	if fs5.MAD > float64(tiny().AnalyticLines)/2*0.05 {
		t.Errorf("FS MAD = %v, more than 5%% of partition", fs5.MAD)
	}
	if fs5.ModelMAD <= 0 {
		t.Error("analytic model MAD missing")
	}
	if fs5.ModelMAD > 4*fs5.MAD || fs5.MAD > 4*fs5.ModelMAD {
		t.Errorf("model MAD %v far from measured %v", fs5.ModelMAD, fs5.MAD)
	}
}

// Fig. 6's claims: mcf speedup > 1 everywhere; lbm ≈ 1; gromacs sensitive
// only at small sizes; under LRU cactusADM drops below 1 somewhere while
// under OPT nothing does.
func TestFig6Shape(t *testing.T) {
	res := Fig6(tiny())
	minSpeed := map[string]float64{}
	maxSpeed := map[string]float64{}
	gromacsSmall, gromacsBig := 0.0, 0.0
	sizes := Fig6Sizes(tiny())
	for _, row := range res.Rows {
		key := string(rune(int(row.Rank))) + row.Bench
		if v, ok := minSpeed[key]; !ok || row.Speedup < v {
			minSpeed[key] = row.Speedup
		}
		if v, ok := maxSpeed[key]; !ok || row.Speedup > v {
			maxSpeed[key] = row.Speedup
		}
		if row.Rank == futility.OPT && row.Bench == "gromacs" {
			if row.Lines == sizes[0] {
				gromacsSmall = row.Speedup
			}
			if row.Lines == sizes[len(sizes)-1] {
				gromacsBig = row.Speedup
			}
		}
	}
	optKey := string(rune(int(futility.OPT)))
	lruKey := string(rune(int(futility.LRU)))
	if maxSpeed[optKey+"mcf"] < 1.1 {
		t.Errorf("mcf max OPT speedup = %v, want sensitive", maxSpeed[optKey+"mcf"])
	}
	if maxSpeed[optKey+"lbm"] > 1.1 || minSpeed[optKey+"lbm"] < 0.95 {
		t.Errorf("lbm OPT speedup range [%v,%v], want ≈1",
			minSpeed[optKey+"lbm"], maxSpeed[optKey+"lbm"])
	}
	if gromacsSmall < gromacsBig+0.05 {
		t.Errorf("gromacs small-size speedup %v not above big-size %v",
			gromacsSmall, gromacsBig)
	}
	// OPT never loses from associativity (§VI: OPT ranks re-reference
	// potential correctly).
	for _, row := range res.Rows {
		if row.Rank == futility.OPT && row.Speedup < 0.97 {
			t.Errorf("OPT %s@%d speedup %v < 1", row.Bench, row.Lines, row.Speedup)
		}
	}
	// LRU-adverse cactusADM must lose somewhere under LRU.
	if minSpeed[lruKey+"cactusADM"] >= 1.0 {
		t.Errorf("cactusADM LRU min speedup = %v, want < 1", minSpeed[lruKey+"cactusADM"])
	}
}

// Fig. 7's claims at a reduced sweep: FS and PF hold subject occupancy at
// target; PriSM undershoots badly; FS's subject AEF beats PF's; FullAssoc
// is the AEF ceiling.
func TestFig7Shape(t *testing.T) {
	s := tiny()
	res := Fig7Sweep(s, []int{4, 16, 31}, nil, []futility.Kind{futility.CoarseLRU})
	get := func(scheme SchemeName, nsubj int) Fig7Row {
		for _, r := range res.Rows {
			if r.Scheme == scheme && r.Subjects == nsubj {
				return r
			}
		}
		t.Fatalf("missing row %v %d", scheme, nsubj)
		return Fig7Row{}
	}
	for _, nsubj := range []int{4, 16} {
		fs := get(SchemeFS, nsubj)
		pf := get(SchemePF, nsubj)
		prism := get(SchemePriSM, nsubj)
		fa := get(SchemeFullAssoc, nsubj)
		if fs.OccupancyFrac < 0.9 || fs.OccupancyFrac > 1.15 {
			t.Errorf("N=%d: FS occupancy %v, want ≈1", nsubj, fs.OccupancyFrac)
		}
		if pf.OccupancyFrac < 0.9 || pf.OccupancyFrac > 1.15 {
			t.Errorf("N=%d: PF occupancy %v, want ≈1", nsubj, pf.OccupancyFrac)
		}
		if prism.OccupancyFrac > fs.OccupancyFrac-0.02 {
			t.Errorf("N=%d: PriSM occupancy %v not clearly below FS %v",
				nsubj, prism.OccupancyFrac, fs.OccupancyFrac)
		}
		if fs.SubjectAEF <= pf.SubjectAEF {
			t.Errorf("N=%d: FS AEF %v not above PF %v", nsubj, fs.SubjectAEF, pf.SubjectAEF)
		}
		if fa.SubjectAEF < 0.95 {
			t.Errorf("N=%d: FullAssoc AEF %v, want ≈1", nsubj, fa.SubjectAEF)
		}
	}
	// Vantage must be skipped when subjects exceed the managed region.
	last := get(SchemeVantage, 31)
	if s.SubjectLines*31 > s.L2Lines*9/10 && !last.Skipped {
		t.Error("Vantage not skipped at 31 subjects")
	}
	sum := res.Summarize(futility.CoarseLRU)
	if len(sum.MeanSubjectIPC) == 0 {
		t.Fatal("empty summary")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	sum.Print(&buf)
	if !strings.Contains(buf.String(), "FS over") {
		t.Error("summary print missing headline")
	}
}

func TestSensSweeps(t *testing.T) {
	s := tiny()
	li := SensInterval(s)
	if len(li.Rows) != len(SensIntervals) {
		t.Fatalf("interval rows = %d", len(li.Rows))
	}
	ld := SensDelta(s)
	if len(ld.Rows) != len(SensDeltas) {
		t.Fatalf("delta rows = %d", len(ld.Rows))
	}
	for _, row := range append(li.Rows, ld.Rows...) {
		if row.OccFrac < 0.85 || row.OccFrac > 1.2 {
			t.Errorf("l=%d Δ=%v: occupancy %v far from target", row.Interval, row.Delta, row.OccFrac)
		}
		if row.AEF < 0.5 {
			t.Errorf("l=%d Δ=%v: AEF %v collapsed", row.Interval, row.Delta, row.AEF)
		}
	}
	var buf bytes.Buffer
	li.Print(&buf)
	ld.Print(&buf)
}

func TestAblationFS(t *testing.T) {
	res := AblationFS(tiny())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OccErr > 0.15 {
			t.Errorf("%s: occupancy error %v", row.Variant, row.OccErr)
		}
		if row.AEF0 < 0.6 {
			t.Errorf("%s: AEF0 %v", row.Variant, row.AEF0)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
}

// A2's claim: PF's associativity collapses as R shrinks toward the
// partition count while FS's stays high; both enforce sizes.
func TestAblationR(t *testing.T) {
	res := AblationR(tiny())
	if len(res.Rows) != len(AblationRCounts) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var r2, r64 AblationRRow
	for _, row := range res.Rows {
		if row.R == 2 {
			r2 = row
		}
		if row.R == 64 {
			r64 = row
		}
		if row.FSAEF < row.PFAEF-0.05 {
			t.Errorf("R=%d: FS AEF %v below PF %v", row.R, row.FSAEF, row.PFAEF)
		}
	}
	if r64.PFAEF <= r2.PFAEF {
		t.Errorf("PF AEF not improving with R: R=2 %v, R=64 %v", r2.PFAEF, r64.PFAEF)
	}
	var buf bytes.Buffer
	res.Print(&buf)
}

func TestBuildValidation(t *testing.T) {
	for _, fn := range []func(){
		func() {
			Build(CacheSpec{Lines: 64, Array: "bogus", Rank: futility.LRU,
				Scheme: SchemePF, Parts: 1}, FSFeedbackParams{})
		},
		func() {
			Build(CacheSpec{Lines: 64, Array: Array16Way, Rank: futility.LRU,
				Scheme: "bogus", Parts: 1}, FSFeedbackParams{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

// Smooth-resizing claims: every replacement-based scheme converges to the
// new targets without flushing, FS/PF converge, and FS's transition does
// not destroy associativity.
func TestResizeShape(t *testing.T) {
	res := Resize(tiny())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Scheme == SchemePriSM {
			// PriSM's sizing is loose (abnormality); only require progress.
			if row.FinalFrac < 0.7 {
				t.Errorf("prism final/target = %v", row.FinalFrac)
			}
			continue
		}
		if row.ConvergeInsertions < 0 {
			t.Errorf("%s never converged (final %v)", row.Scheme, row.FinalFrac)
		}
		if row.FinalFrac < 0.9 || row.FinalFrac > 1.1 {
			t.Errorf("%s final/target = %v", row.Scheme, row.FinalFrac)
		}
	}
	var fs, pf ResizeRow
	for _, row := range res.Rows {
		if row.Scheme == SchemeFS {
			fs = row
		}
		if row.Scheme == SchemePF {
			pf = row
		}
	}
	if fs.TransitionAEF < pf.TransitionAEF {
		t.Errorf("FS transition AEF %v below PF %v", fs.TransitionAEF, pf.TransitionAEF)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Resize") {
		t.Error("print missing header")
	}
}

// The utility stack must beat the equal split on a heterogeneous mix, and
// must allocate more capacity to reuse-heavy threads than to streamers.
func TestUtilShape(t *testing.T) {
	res := Util(tiny())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byStack := map[string]UtilRow{}
	for _, row := range res.Rows {
		byStack[row.Stack] = row
	}
	eq := byStack["equal+fs"]
	ut := byStack["utility+fs"]
	if ut.Throughput < eq.Throughput*0.98 {
		t.Errorf("utility throughput %v clearly below equal %v", ut.Throughput, eq.Throughput)
	}
	// mcf (index 0, reuse-heavy) gets more than lbm (index 2, streaming).
	if ut.Targets[0] <= ut.Targets[2] {
		t.Errorf("utility targets did not favor reuse: %v", ut.Targets)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "utility+fs") {
		t.Error("print missing stack name")
	}
}

// A3's claims: way-partitioning cannot represent partition 0's half-share
// target at small N (occupancy quantized to a whole way), its AEF is far
// below FS's, and it cannot host more partitions than ways at all.
func TestAblationWay(t *testing.T) {
	res := AblationWay(tiny())
	if len(res.Rows) != len(AblationWayParts) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Parts > 16 {
			if !row.Skipped {
				t.Errorf("N=%d not skipped", row.Parts)
			}
			continue
		}
		if row.Skipped {
			t.Errorf("N=%d skipped", row.Parts)
			continue
		}
		if row.FSAEF <= row.WayAEF {
			t.Errorf("N=%d: FS AEF %v not above waypart %v", row.Parts, row.FSAEF, row.WayAEF)
		}
		if row.FSOcc < 0.9 || row.FSOcc > 1.1 {
			t.Errorf("N=%d: FS occupancy %v", row.Parts, row.FSOcc)
		}
	}
	// Granularity: at N=2 the half-share target (1/4 cache) quantizes to
	// whole ways; partition 0 ends up away from its target by at least a
	// half-way worth of error... at N=2 target 1024 of 4096 = 4 ways exact;
	// at N=4 target 512 of 4096 = 2 ways exact; at N=8 target 256 = 1 way
	// exact. The interesting case: the apportionment floor forces ≥1 way
	// (256 lines at N=8) — check the reported occupancy reflects whole-way
	// quantization rather than failing.
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "way-AEF") {
		t.Error("print missing header")
	}
}
