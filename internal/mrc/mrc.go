// Package mrc computes exact LRU miss-ratio curves with Mattson's stack
// algorithm: one pass over a trace yields, for every cache size
// simultaneously, the miss ratio a fully-associative LRU cache of that size
// would achieve. The stack-distance histogram it produces is the exact
// version of what the UMON utility monitors (internal/policy) estimate with
// sampled shadow tags, and it predicts the simulator's fully-associative
// LRU behaviour line-for-line (see the cross-validation in mrc_test.go).
//
// The inclusion property behind it: under LRU, a reference with stack
// distance d (d−1 lines touched more recently than its last use... here:
// d = number of distinct lines more recently used, plus one) hits in every
// cache of at least d lines and misses in every smaller cache.
package mrc

import (
	"fscache/internal/ost"
	"fscache/internal/trace"
)

// Profiler accumulates a stack-distance histogram over an access stream.
type Profiler struct {
	tree *ost.Tree
	// lastKey maps a line address to its current key in the recency tree.
	lastKey map[uint64]ost.Key
	seq     uint64
	// hist[d] counts references at stack distance d+1 (1-based distance:
	// d = 1 means the line was the most recently used). Distances beyond
	// MaxDepth are folded into cold misses.
	hist     []uint64
	cold     uint64
	total    uint64
	maxDepth int
}

// New returns a profiler recording distances up to maxDepth lines
// (references that would only hit in caches larger than maxDepth count as
// cold misses). maxDepth must be positive.
func New(maxDepth int, seed uint64) *Profiler {
	if maxDepth <= 0 {
		panic("mrc: maxDepth must be positive")
	}
	return &Profiler{
		tree:     ost.New(seed),
		lastKey:  make(map[uint64]ost.Key, 1<<12),
		hist:     make([]uint64, maxDepth),
		maxDepth: maxDepth,
	}
}

// Touch records one reference to line addr.
func (p *Profiler) Touch(addr uint64) {
	p.total++
	p.seq++
	newKey := ost.Key{Primary: ^p.seq, Tie: addr}
	if old, ok := p.lastKey[addr]; ok {
		// Ascending keys are most-recent-first (^seq), so the rank of the
		// old key is exactly the number of distinct lines used since —
		// the stack distance.
		rank, found := p.tree.Rank(old)
		if !found {
			panic("mrc: recency tree lost a tracked line")
		}
		if rank <= p.maxDepth {
			p.hist[rank-1]++
		} else {
			p.cold++
		}
		p.tree.Delete(old)
	} else {
		p.cold++
	}
	p.tree.Insert(newKey, int64(0))
	p.lastKey[addr] = newKey
}

// Walk feeds an entire trace through the profiler.
func (p *Profiler) Walk(t *trace.Trace) {
	for i := range t.Accesses {
		p.Touch(t.Accesses[i].Addr)
	}
}

// Total returns the number of references recorded.
func (p *Profiler) Total() uint64 { return p.total }

// ColdMisses returns references with no prior use (plus beyond-depth ones).
func (p *Profiler) ColdMisses() uint64 { return p.cold }

// Histogram returns the stack-distance counts: Histogram()[d] is the number
// of references whose reuse required a cache of at least d+1 lines.
func (p *Profiler) Histogram() []uint64 {
	return append([]uint64(nil), p.hist...)
}

// MaxDepth returns the largest stack distance the profiler resolves.
// References reused at greater distances were folded into cold misses.
func (p *Profiler) MaxDepth() int { return p.maxDepth }

// Truncated reports whether MissRatio(lines) is saturated by the profiled
// depth: for lines > MaxDepth() the profiler cannot credit hits beyond the
// recorded histogram, so the returned ratio is the MaxDepth() value — an
// upper bound on the true miss ratio, not the exact one.
func (p *Profiler) Truncated(lines int) bool { return lines > p.maxDepth }

// MissRatio returns the exact miss ratio of a fully-associative LRU cache
// with `lines` lines over the recorded stream.
//
// The result saturates at the profiled depth: for lines > MaxDepth() it is
// the miss ratio at exactly MaxDepth() lines, which *overstates* the true
// miss ratio of a larger cache whenever reuses occurred beyond that depth.
// The MaxDepth() point itself is exact — a reuse at stack distance
// MaxDepth() is credited to the histogram, matching Truncated's strict
// `lines > MaxDepth()` boundary. Callers comparing against caches larger
// than the profiled depth must check Truncated(lines) and either deepen the
// profiler or treat the value as a lower bound on hits.
func (p *Profiler) MissRatio(lines int) float64 {
	if p.total == 0 {
		return 0
	}
	if lines <= 0 {
		return 1
	}
	var hits uint64
	limit := lines
	if limit > p.maxDepth {
		limit = p.maxDepth
	}
	for d := 0; d < limit; d++ {
		hits += p.hist[d]
	}
	return float64(p.total-hits) / float64(p.total)
}

// Curve returns miss ratios at each requested cache size. Sizes beyond
// MaxDepth() saturate to the MaxDepth() miss ratio (see MissRatio); use
// Truncated to detect which points are affected.
func (p *Profiler) Curve(sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = p.MissRatio(s)
	}
	return out
}
