package mrc

import (
	"math"
	"testing"
	"testing/quick"

	"fscache/internal/baselines"
	"fscache/internal/cachearray"
	"fscache/internal/core"
	"fscache/internal/futility"
	"fscache/internal/trace"
	"fscache/internal/workload"
	"fscache/internal/xrand"
)

func TestStackDistancesByHand(t *testing.T) {
	p := New(16, 1)
	// a b a → a: cold; b: cold; a: distance 2 (b used since).
	p.Touch(1)
	p.Touch(2)
	p.Touch(1)
	if p.ColdMisses() != 2 {
		t.Fatalf("cold = %d", p.ColdMisses())
	}
	h := p.Histogram()
	if h[0] != 0 || h[1] != 1 {
		t.Fatalf("hist = %v, want distance 2 once", h[:4])
	}
	// Immediate re-reference: distance 1.
	p.Touch(1)
	if p.Histogram()[0] != 1 {
		t.Fatal("distance-1 reference not recorded")
	}
	if p.Total() != 4 {
		t.Fatalf("total = %d", p.Total())
	}
}

func TestMissRatioMonotone(t *testing.T) {
	p := New(4096, 2)
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	p.Walk(trace.Collect(prof.Shrunk(16).NewGenerator(3, 0), 50000))
	prev := 1.1
	for _, s := range []int{0, 1, 16, 64, 256, 1024, 4096} {
		mr := p.MissRatio(s)
		if mr < 0 || mr > 1 {
			t.Fatalf("miss ratio %v out of range", mr)
		}
		if mr > prev+1e-12 {
			t.Fatalf("miss ratio not monotone: %v after %v at size %d", mr, prev, s)
		}
		prev = mr
	}
	if p.MissRatio(0) != 1 {
		t.Fatal("zero-size cache must miss always")
	}
}

// The headline property: the profiler's predicted miss ratio equals the
// measured miss count of a simulated fully-associative LRU cache of the
// same size, reference for reference.
func TestPredictsFullyAssociativeLRU(t *testing.T) {
	prof, err := workload.ByName("omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Collect(prof.Shrunk(16).NewGenerator(7, 0), 40000)

	p := New(1<<16, 8)
	p.Walk(tr)

	for _, lines := range []int{64, 256, 1024} {
		c := core.New(core.Config{
			Array:  cachearray.NewFullyAssoc(lines),
			Ranker: futility.NewExactLRU(lines, 1, 9),
			Scheme: baselines.NewUnmanaged(),
			Parts:  1,
		})
		c.SetTargets([]int{lines})
		misses := 0
		for i := range tr.Accesses {
			if !c.Access(tr.Accesses[i].Addr, 0, trace.NoNextUse).Hit {
				misses++
			}
		}
		predicted := p.MissRatio(lines)
		measured := float64(misses) / float64(tr.Len())
		if math.Abs(predicted-measured) > 1e-9 {
			t.Fatalf("size %d: predicted %v, measured %v", lines, predicted, measured)
		}
	}
}

// Property: total = cold + sum(hist) and distances are well-formed for any
// access pattern.
func TestQuickAccounting(t *testing.T) {
	f := func(raw []uint8) bool {
		p := New(64, 11)
		for _, a := range raw {
			p.Touch(uint64(a % 32))
		}
		var sum uint64
		for _, h := range p.Histogram() {
			sum += h
		}
		return p.Total() == uint64(len(raw)) && sum+p.ColdMisses() == p.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Distances beyond maxDepth fold into cold misses, never panic.
func TestDepthFolding(t *testing.T) {
	p := New(4, 13)
	for i := 0; i < 10; i++ {
		p.Touch(uint64(i))
	}
	p.Touch(0) // distance 10 > maxDepth 4
	if p.MissRatio(4) != 1 {
		t.Fatalf("deep reuse leaked into small-cache hits: %v", p.MissRatio(4))
	}
	h := p.Histogram()
	for _, v := range h {
		if v != 0 {
			t.Fatalf("hist = %v, want empty", h)
		}
	}
}

func TestCurve(t *testing.T) {
	p := New(128, 17)
	rng := xrand.New(19)
	for i := 0; i < 20000; i++ {
		p.Touch(rng.Uint64() % 100)
	}
	curve := p.Curve([]int{1, 50, 100, 128})
	// With 100 uniformly accessed lines, a 100-line cache hits everything
	// after compulsory misses.
	if curve[3] > 0.01 {
		t.Fatalf("full-footprint cache miss ratio = %v", curve[3])
	}
	if !(curve[0] > curve[1] && curve[1] > curve[2]) {
		t.Fatalf("curve not decreasing: %v", curve)
	}
}

// Sizes beyond the profiled depth saturate: MissRatio must return the
// MaxDepth value (an overstatement of the true miss ratio) and Truncated
// must flag exactly those sizes.
func TestTruncationSurfaced(t *testing.T) {
	const depth = 8
	p := New(depth, 23)
	// A cyclic scan over 16 lines: every reuse is at stack distance 16,
	// beyond the profiled depth, so the profiler folds all of them into
	// cold misses even though a 16-line LRU cache would hit every reuse.
	for rep := 0; rep < 4; rep++ {
		for a := uint64(0); a < 16; a++ {
			p.Touch(a)
		}
	}
	if p.MaxDepth() != depth {
		t.Fatalf("MaxDepth = %d, want %d", p.MaxDepth(), depth)
	}
	atDepth := p.MissRatio(depth)
	for _, lines := range []int{depth + 1, 16, 1 << 20} {
		if !p.Truncated(lines) {
			t.Errorf("Truncated(%d) = false, want true", lines)
		}
		if got := p.MissRatio(lines); got != atDepth {
			t.Errorf("MissRatio(%d) = %v, want saturated value %v", lines, got, atDepth)
		}
	}
	for _, lines := range []int{0, 1, depth} {
		if p.Truncated(lines) {
			t.Errorf("Truncated(%d) = true, want false", lines)
		}
	}
	// The saturated value genuinely overstates the true miss ratio here: a
	// 16-line cache would only take 16 compulsory misses in 64 accesses.
	if atDepth != 1 {
		t.Fatalf("cyclic scan beyond depth should profile as all misses, got %v", atDepth)
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0, 1)
}

func BenchmarkTouch(b *testing.B) {
	p := New(1<<16, 1)
	rng := xrand.New(2)
	for i := 0; i < b.N; i++ {
		p.Touch(rng.Uint64() % (1 << 15))
	}
}

// Boundary: a reuse at stack distance exactly MaxDepth() is credited, so
// MissRatio(MaxDepth()) is exact and saturation starts strictly beyond it —
// Truncated(MaxDepth()) is false, Truncated(MaxDepth()+1) is true, and the
// two sizes report the same (saturated) ratio.
func TestMaxDepthBoundary(t *testing.T) {
	const depth = 8
	p := New(depth, 1)
	// Cycle through exactly `depth` distinct lines twice: every reuse has
	// stack distance depth, the largest the profiler resolves.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < depth; a++ {
			p.Touch(a)
		}
	}
	if p.Truncated(depth) {
		t.Fatalf("Truncated(%d) = true; the MaxDepth() point is fully resolved", depth)
	}
	if !p.Truncated(depth + 1) {
		t.Fatalf("Truncated(%d) = false; saturation must start past MaxDepth()", depth+1)
	}
	// 8 cold misses + 8 reuses at distance 8: a depth-8 cache hits all the
	// reuses, so the exact ratio at MaxDepth() is 1/2 — and NOT the 1.0 a
	// (depth−1)-line cache would see.
	if got := p.MissRatio(depth); got != 0.5 {
		t.Fatalf("MissRatio(MaxDepth()) = %v, want exact 0.5", got)
	}
	if got := p.MissRatio(depth - 1); got != 1 {
		t.Fatalf("MissRatio(MaxDepth()-1) = %v, want 1 (distance-%d reuses all miss)", got, depth)
	}
	if p.MissRatio(depth+1) != p.MissRatio(depth) {
		t.Fatalf("MissRatio past MaxDepth must saturate at the MaxDepth value")
	}
}
