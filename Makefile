# Developer entry points. `make check` is what CI runs.

GO ?= go

.PHONY: build test race lint check fmt fuzz smoke scenarios alloc bench benchjson bench-gate cover soak load serve netsoak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full-module race run; -short trims the heavyweight property sweeps so the
# 10x race-detector slowdown stays tolerable (CI runs this as its own job).
race:
	$(GO) test -race -short ./...

# vet + gofmt + the full fslint suite (allocfree with its escape-analysis
# cross-check, lockcheck, staleignore, determinism, floateq, hotpath,
# panicstyle, tswrap). `go run ./cmd/fslint -list` describes each analyzer.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) run ./cmd/fslint ./...

fmt:
	gofmt -w .

# Short fuzz sessions (seed corpus + 10s of mutation each): the trace
# decoder, the differential oracle over scenario programs, the serving
# layer's wire codec at both the payload and framed-stream level, and the
# FSD1 decision-trace codec.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadFrom -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzAccess -fuzztime=10s ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzFrame$$' -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzFrameStream -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzDecisionTrace -fuzztime=10s ./internal/scenario

# End-to-end smoke: the full quick-scale sweep must exit 0.
smoke:
	$(GO) run ./cmd/fstables -scale quick

# Adversarial scenario matrix (DESIGN.md §16): run every committed spec in
# examples/scenarios through fstables, including the counterfactual
# decision-trace replay columns. The FS self-replay column must report zero
# divergence; fstables exits non-zero if it does not.
scenarios:
	$(GO) run ./cmd/fstables -scenario examples/scenarios

# Online-allocation smoke (DESIGN.md §17): the measurement→targets loop on
# two committed specs — a mid-run phase change (zipf-drift) and tenant
# arrival/departure (tenant-churn). RunScenarioAlloc exits non-zero when any
# epoch's targets break the per-partition floors or the line budget, or when
# the allocator's aggregate miss ratio diverges above the static split's by
# more than the gate margin.
alloc:
	$(GO) run ./cmd/fstables -scenario examples/scenarios/zipf-drift.yaml -alloc phase
	$(GO) run ./cmd/fstables -scenario examples/scenarios/tenant-churn.yaml -alloc utility

# Hot-path microbenchmarks with allocation counts (go test -bench form).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/ost ./internal/futility ./internal/core

# Full fsbench run: writes BENCH_<date>.json with the GOMAXPROCS sweep and
# diffs against the newest committed baseline (advisory). Refresh the
# committed file when a PR is expected to move the numbers; see DESIGN.md
# §10 and §15.
benchjson:
	$(GO) run ./cmd/fsbench -count 3 -procs 1,2,4,8,16 -compare "$$(ls BENCH_*.json 2>/dev/null | sort | tail -1)"

# CI perf ratchet: short-benchtime registry run with the GOMAXPROCS sweep,
# gated against the newest committed baseline. Fails on zero-alloc contract
# breaches and allocs/op growth unconditionally, on ns/op tolerance-band
# breaches when the environment matches the baseline, and on parallel rows
# scaling below MinScale x min(procs, NumCPU) within this run. Refuses
# outright to compare across different -procs sweeps.
bench-gate:
	$(GO) run ./cmd/fsbench -benchtime 100ms -count 3 -procs 1,2,4,8,16 -out bench-gate.json -gate \
		-compare "$$(ls BENCH_*.json 2>/dev/null | sort | tail -1)"

# Advisory coverage: writes the merged profile (cover.out) and a per-package
# summary (cover.txt, also printed). Never fails on a threshold — coverage
# here is a review signal, not a gate.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/... ./... | tee cover.txt
	$(GO) tool cover -func=cover.out | tail -1
	@echo "per-package summary in cover.txt, full profile in cover.out"

# Long-running differential soak against the naive oracle (Ctrl-C safe; any
# finding prints a shrunk, replayable reproducer).
soak:
	$(GO) run ./cmd/fscheck -duration 10m

# Concurrent load against the sharded engine under the race detector:
# throughput, latency quantiles and per-partition occupancy error
# (DESIGN.md §12). CI runs the same configuration in its race job.
load:
	$(GO) run -race ./cmd/fsload -shards 2 -stripes 4 -workers 4 -batch 16 -duration 2s

# Run the multi-tenant cache server in the foreground with two tenants
# (one guaranteed, one best-effort) and a 2:1 capacity split. Ctrl-C drains.
serve:
	$(GO) run ./cmd/fsserve -tenants g:0,b:0 -targets 2731,1365 -rebalance 250ms

# End-to-end serving-layer soak under the race detector: a race-built
# fsserve with listener-side fault injection, a faulty closed-loop fsload
# fleet with error-rate and occupancy gates (DESIGN.md §14), then a SIGTERM
# drain that must come back clean (fsserve exits 1 on a forced drain). CI's
# server job runs the same shape with a shorter duration.
netsoak:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o "$$tmp/fsserve" ./cmd/fsserve; \
	$(GO) build -race -o "$$tmp/fsload" ./cmd/fsload; \
	"$$tmp/fsserve" -addr 127.0.0.1:0 -addrfile "$$tmp/addr" -lines 512 \
		-tenants g:0,b:0 -targets 342,170 -faults & pid=$$!; \
	for i in $$(seq 1 50); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "fsserve never wrote its address" >&2; kill $$pid; exit 1; }; \
	"$$tmp/fsload" -net "$$(cat "$$tmp/addr")" -workers 4 -keys 4096 -duration 3s \
		-deadline 50ms -hedge 20ms -faults -maxerr 0.05 -maxocc 0.25; \
	kill -TERM $$pid; wait $$pid

check: build lint test race
