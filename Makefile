# Developer entry points. `make check` is what CI runs.

GO ?= go

.PHONY: build test race lint check fmt fuzz smoke bench benchjson

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments ./internal/core

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) run ./cmd/fslint ./...

fmt:
	gofmt -w .

# Short fuzz session over the trace decoder (seed corpus + 10s of mutation).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadFrom -fuzztime=10s ./internal/trace

# End-to-end smoke: the full quick-scale sweep must exit 0.
smoke:
	$(GO) run ./cmd/fstables -scale quick

# Hot-path microbenchmarks with allocation counts (go test -bench form).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/ost ./internal/futility ./internal/core

# Full fsbench run: writes BENCH_<date>.json and diffs against the newest
# committed baseline (advisory). Refresh the committed file when a PR is
# expected to move the numbers; see DESIGN.md §10.
benchjson:
	$(GO) run ./cmd/fsbench -compare "$$(ls BENCH_*.json 2>/dev/null | sort | tail -1)"

check: build lint test race
