# Developer entry points. `make check` is what CI runs.

GO ?= go

.PHONY: build test race lint check fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiments ./internal/core

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) run ./cmd/fslint ./...

fmt:
	gofmt -w .

check: build lint test race
