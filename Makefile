# Developer entry points. `make check` is what CI runs.

GO ?= go

.PHONY: build test race lint check fmt fuzz smoke bench benchjson cover soak load

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full-module race run; -short trims the heavyweight property sweeps so the
# 10x race-detector slowdown stays tolerable (CI runs this as its own job).
race:
	$(GO) test -race -short ./...

# vet + gofmt + the full fslint suite (allocfree with its escape-analysis
# cross-check, lockcheck, staleignore, determinism, floateq, hotpath,
# panicstyle, tswrap). `go run ./cmd/fslint -list` describes each analyzer.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) run ./cmd/fslint ./...

fmt:
	gofmt -w .

# Short fuzz sessions (seed corpus + 10s of mutation each): the trace
# decoder, then the differential oracle over scenario programs.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadFrom -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzAccess -fuzztime=10s ./internal/core

# End-to-end smoke: the full quick-scale sweep must exit 0.
smoke:
	$(GO) run ./cmd/fstables -scale quick

# Hot-path microbenchmarks with allocation counts (go test -bench form).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/ost ./internal/futility ./internal/core

# Full fsbench run: writes BENCH_<date>.json and diffs against the newest
# committed baseline (advisory). Refresh the committed file when a PR is
# expected to move the numbers; see DESIGN.md §10.
benchjson:
	$(GO) run ./cmd/fsbench -compare "$$(ls BENCH_*.json 2>/dev/null | sort | tail -1)"

# Advisory coverage: writes the merged profile (cover.out) and a per-package
# summary (cover.txt, also printed). Never fails on a threshold — coverage
# here is a review signal, not a gate.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/... ./... | tee cover.txt
	$(GO) tool cover -func=cover.out | tail -1
	@echo "per-package summary in cover.txt, full profile in cover.out"

# Long-running differential soak against the naive oracle (Ctrl-C safe; any
# finding prints a shrunk, replayable reproducer).
soak:
	$(GO) run ./cmd/fscheck -duration 10m

# Concurrent load against the sharded engine under the race detector:
# throughput, latency quantiles and per-partition occupancy error
# (DESIGN.md §12). CI runs the same configuration in its race job.
load:
	$(GO) run -race ./cmd/fsload -shards 2 -workers 4 -duration 2s

check: build lint test race
