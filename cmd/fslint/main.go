// Command fslint runs the repository's custom static analyzers over Go
// packages, in the spirit of a go/analysis multichecker. It enforces the
// simulator's determinism, numeric-safety, and concurrency contracts:
//
//	allocfree    //fs:allocfree functions (and everything they reach) must
//	             not heap-allocate; cross-checked against the compiler's
//	             own escape analysis (-gcflags=-m)
//	determinism  no math/rand, wall-clock reads or order-sensitive map
//	             iteration in simulation packages
//	floateq      no ==/!= between floating-point expressions
//	hotpath      no inline fmt formatting inside panic() in simulation
//	             packages (use a cold *panic* helper)
//	lockcheck    //fs:guardedby fields accessed only under their mutex,
//	             //fs:lockorder acquisition order respected
//	panicstyle   panic messages must carry the "pkg: " prefix
//	staleignore  //fslint:ignore comments that suppress nothing are
//	             themselves findings
//	tswrap       no raw arithmetic on 8-bit wrapping timestamp fields
//
// Usage:
//
//	go run ./cmd/fslint ./...
//	go run ./cmd/fslint -analyzers floateq,tswrap ./internal/futility
//	go run ./cmd/fslint -json ./... | jq .
//
// fslint exits 0 when the tree is clean and 1 when it has findings, so it
// can gate CI. The default text output is one finding per line in
// file:line:col form (matched by .github/fslint-problem-matcher.json so
// findings annotate pull requests); -json emits the same findings as a
// JSON array for tooling. Individual findings are suppressed in source
// with
//
//	//fslint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above it. Comments naming analyzers
// that are not registered here, and comments that no longer suppress
// anything, are reported rather than silently ignored.
//
// -escape=false skips the allocfree escape-analysis cross-check (it
// shells out to `go build` per annotated package, which needs a warm
// build cache to be fast).
//
// The framework under internal/lint/analysis is a dependency-free mirror of
// golang.org/x/tools/go/analysis (this module deliberately has no
// third-party requirements), so the `go vet -vettool` protocol is not
// supported; run fslint directly instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fscache/internal/lint/allocfree"
	"fscache/internal/lint/analysis"
	"fscache/internal/lint/determinism"
	"fscache/internal/lint/floateq"
	"fscache/internal/lint/hotpath"
	"fscache/internal/lint/lockcheck"
	"fscache/internal/lint/panicstyle"
	"fscache/internal/lint/staleignore"
	"fscache/internal/lint/tswrap"
)

// registry builds the full analyzer set. allocfree is constructed per run
// because the -escape flag decides whether it shells out to the compiler.
func registry(escape bool) []*analysis.Analyzer {
	opts := allocfree.Options{}
	if escape {
		opts.Escape = allocfree.GoBuildEscape
	}
	return []*analysis.Analyzer{
		allocfree.New(opts),
		determinism.Analyzer,
		floateq.Analyzer,
		hotpath.Analyzer,
		lockcheck.New(),
		panicstyle.Analyzer,
		staleignore.New(),
		tswrap.Analyzer,
	}
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	escape := flag.Bool("escape", true, "cross-check allocfree against go build -gcflags=-m")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fslint [-list] [-analyzers a,b] [-json] [-escape=false] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := registry(*escape)

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	active, err := selectAnalyzers(all, *names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fslint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fslint:", err)
		os.Exit(2)
	}
	// The full registry stays Known even when -analyzers selects a
	// subset: a suppression naming a deselected analyzer is well-formed.
	known := make([]string, 0, len(all))
	for _, a := range all {
		known = append(known, a.Name)
	}
	findings, err := analysis.RunOpts(units, active, analysis.Options{Known: known})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fslint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	relativize := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     relativize(f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fslint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			f.Pos.Filename = relativize(f.Pos.Filename)
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectAnalyzers(all []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var active []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		active = append(active, a)
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return active, nil
}
