// Command fslint runs the repository's custom static analyzers over Go
// packages, in the spirit of a go/analysis multichecker. It enforces the
// simulator's determinism and numeric-safety contract:
//
//	determinism  no math/rand, wall-clock reads or order-sensitive map
//	             iteration in simulation packages
//	floateq      no ==/!= between floating-point expressions
//	hotpath      no inline fmt formatting inside panic() in simulation
//	             packages (use a cold *panic* helper)
//	panicstyle   panic messages must carry the "pkg: " prefix
//	tswrap       no raw arithmetic on 8-bit wrapping timestamp fields
//
// Usage:
//
//	go run ./cmd/fslint ./...
//	go run ./cmd/fslint -analyzers floateq,tswrap ./internal/futility
//
// fslint exits 0 when the tree is clean and 1 when it has findings, so it
// can gate CI. Individual findings are suppressed in source with
//
//	//fslint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above it.
//
// The framework under internal/lint/analysis is a dependency-free mirror of
// golang.org/x/tools/go/analysis (this module deliberately has no
// third-party requirements), so the `go vet -vettool` protocol is not
// supported; run fslint directly instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fscache/internal/lint/analysis"
	"fscache/internal/lint/determinism"
	"fscache/internal/lint/floateq"
	"fscache/internal/lint/hotpath"
	"fscache/internal/lint/panicstyle"
	"fscache/internal/lint/tswrap"
)

var all = []*analysis.Analyzer{
	determinism.Analyzer,
	floateq.Analyzer,
	hotpath.Analyzer,
	panicstyle.Analyzer,
	tswrap.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fslint [-list] [-analyzers a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	active, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fslint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fslint:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(units, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fslint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var active []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		active = append(active, a)
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return active, nil
}
