// Command fstables regenerates every table and figure of the paper's
// evaluation (DESIGN.md §3 lists the experiment index).
//
// Experiments run under internal/harness: a panicking or hung experiment is
// reported (with its stack) and the sweep continues, per-experiment
// deadlines come from -timeout, and -resume skips experiments a previous
// invocation already completed (recorded in the -journal file, keyed by
// scale and seed). The exit status is nonzero if any experiment failed.
//
// Usage:
//
//	fstables                       # run everything at quick scale
//	fstables -scale full           # paper-fidelity configuration (slow)
//	fstables -fig fig7             # one experiment
//	fstables -list                 # show available experiment ids
//	fstables -timeout 30m          # per-experiment wall-clock deadline
//	fstables -scale full -resume   # continue an interrupted sweep
//	fstables -scenario spec.yaml   # one declarative scenario (or a directory
//	                               # of specs): FS vs PF/Vantage comparison
//	                               # tables with counterfactual decision replay
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fscache/internal/experiments"
	"fscache/internal/harness"
	"fscache/internal/profiling"
	"fscache/internal/scenario"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment id to run, or 'all'")
		scale   = flag.String("scale", "quick", "scale: quick or full")
		seed    = flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		plots   = flag.Bool("plots", false, "also render ASCII CDF plots where available")
		asJSON  = flag.Bool("json", false, "emit results as JSON instead of tables")
		timeout = flag.Duration("timeout", 0, "per-experiment wall-clock deadline (0 = none)")
		retries = flag.Int("retries", 0, "retry count for failures marked retryable")
		resume  = flag.Bool("resume", false, "skip experiments completed by a previous run (see -journal)")
		journal = flag.String("journal", "fstables.journal", "completion journal used by -resume")
		panicID = flag.String("panic", "", "make the named experiment panic (harness self-test)")
		scen    = flag.String("scenario", "", "scenario spec file or directory; replaces the experiment registry")
		allocFl = flag.String("alloc", "", "with -scenario: drive targets with the online allocator under this objective (utility|maxmin|qos|phase) and compare against the static split")
	)
	prof := profiling.Register()
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", r.ID, r.Desc)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "full":
		sc = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "fstables: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "fstables:", err)
		os.Exit(2)
	}

	runners := experiments.Registry()
	if *scen != "" {
		loaded, err := scenario.LoadSpecs(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fstables:", err)
			os.Exit(2)
		}
		runners = runners[:0]
		for _, ls := range loaded {
			ls := ls
			if *seed != 0 {
				ls.Spec.Seed = *seed
			}
			if *allocFl != "" {
				runners = append(runners, experiments.Runner{
					ID:   "alloc:" + ls.Spec.Name,
					Desc: fmt.Sprintf("scenario %s: online %s allocation vs static targets", ls.Spec.Name, *allocFl),
					Run: func(experiments.Scale) experiments.Printable {
						res, err := experiments.RunScenarioAlloc(ls.Spec, ls.Dir, *allocFl)
						if err != nil {
							panic("fstables: " + err.Error())
						}
						return res
					},
				})
				continue
			}
			runners = append(runners, experiments.Runner{
				ID:   "scenario:" + ls.Spec.Name,
				Desc: fmt.Sprintf("scenario %s: FS vs PF/Vantage with counterfactual replay", ls.Spec.Name),
				Run: func(experiments.Scale) experiments.Printable {
					res, err := experiments.RunScenario(ls.Spec, ls.Dir)
					if err != nil {
						panic("fstables: " + err.Error())
					}
					return res
				},
			})
		}
	} else if *fig != "all" {
		r, err := experiments.ByID(strings.TrimSpace(*fig))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fstables:", err)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	opts := harness.Options{Timeout: *timeout, Retries: *retries}
	if *resume {
		scope := fmt.Sprintf("scale=%s seed=%d", sc.Name, sc.Seed)
		j, err := harness.OpenJournal(*journal, scope)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fstables:", err)
			os.Exit(1)
		}
		defer j.Close()
		opts.Journal = j
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	desc := map[string]string{}
	tasks := make([]harness.Task, 0, len(runners))
	for _, r := range runners {
		r := r
		desc[r.ID] = r.Desc
		run := func() (interface{}, error) {
			if !*asJSON {
				fmt.Printf("==== %s — %s\n", r.ID, r.Desc)
			}
			return r.Run(sc), nil
		}
		if r.ID == *panicID {
			run = func() (interface{}, error) {
				if !*asJSON {
					fmt.Printf("==== %s — %s\n", r.ID, r.Desc)
				}
				panic("fstables: deliberate panic requested via -panic")
			}
		}
		tasks = append(tasks, harness.Task{ID: r.ID, Run: run})
	}

	opts.Report = func(res harness.Result) {
		switch {
		case res.Resumed:
			if *asJSON {
				return
			}
			fmt.Printf("==== %s — %s\n     already completed (journal); skipping\n\n", res.ID, desc[res.ID])
		case res.Err != nil:
			if !*asJSON {
				fmt.Printf("---- %s FAILED after %v\n\n", res.ID, res.Elapsed.Round(time.Millisecond))
			}
		default:
			p := res.Value.(experiments.Printable)
			if *asJSON {
				if err := enc.Encode(map[string]interface{}{
					"id": res.ID, "desc": desc[res.ID], "result": p,
				}); err != nil {
					fmt.Fprintln(os.Stderr, "fstables:", err)
					os.Exit(1)
				}
				return
			}
			p.Print(os.Stdout)
			if *plots {
				if pp, ok := p.(interface{ PrintPlots(w io.Writer) }); ok {
					pp.PrintPlots(os.Stdout)
				}
			}
			fmt.Printf("---- %s done in %v\n\n", res.ID, res.Elapsed.Round(time.Millisecond))
		}
	}

	summary := harness.RunAll(tasks, opts)
	prof.Stop() // flush profiles before any failure exit
	if !summary.OK() {
		summary.PrintFailures(os.Stderr)
		os.Exit(1)
	}
}
