// Command fstables regenerates every table and figure of the paper's
// evaluation (DESIGN.md §3 lists the experiment index).
//
// Usage:
//
//	fstables                 # run everything at quick scale
//	fstables -scale full     # paper-fidelity configuration (slow)
//	fstables -fig fig7       # one experiment
//	fstables -list           # show available experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fscache/internal/experiments"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "experiment id to run, or 'all'")
		scale  = flag.String("scale", "quick", "scale: quick or full")
		seed   = flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		plots  = flag.Bool("plots", false, "also render ASCII CDF plots where available")
		asJSON = flag.Bool("json", false, "emit results as JSON instead of tables")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", r.ID, r.Desc)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "full":
		sc = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "fstables: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	runners := experiments.Registry()
	if *fig != "all" {
		r, err := experiments.ByID(strings.TrimSpace(*fig))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fstables:", err)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, r := range runners {
		start := time.Now()
		res := r.Run(sc)
		if *asJSON {
			if err := enc.Encode(map[string]interface{}{
				"id": r.ID, "desc": r.Desc, "result": res,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "fstables:", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("==== %s — %s\n", r.ID, r.Desc)
		res.Print(os.Stdout)
		if *plots {
			if p, ok := res.(interface{ PrintPlots(w io.Writer) }); ok {
				p.PrintPlots(os.Stdout)
			}
		}
		fmt.Printf("---- %s done in %v\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
