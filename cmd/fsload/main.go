// Command fsload is a closed-loop load generator for the sharded concurrent
// engine (internal/shardcache). It hammers one Engine with free-running
// worker goroutines for a fixed wall-clock duration while a background
// rebalancer redistributes per-partition targets, then reports aggregate
// throughput, per-worker access-latency quantiles and the per-partition
// occupancy error against the configured targets — the operational health
// check for the sharded engine, and the -race smoke test CI runs.
//
// Unlike the deterministic test driver (shardcache.RunDeterministic), fsload
// deliberately lets workers share shards and race against the rebalancer:
// the point is to exercise the engine the way a real concurrent client
// would. Throughput numbers therefore vary run to run; the occupancy errors
// should not (the feedback controllers converge regardless of interleaving).
//
// Examples:
//
//	fsload                                  # 4 shards, 4 workers, 5s
//	fsload -shards 1 -workers 4             # contention baseline
//	fsload -shards 2 -workers 4 -duration 2s -seed 7
//	fsload -stripes 4 -batch 32             # striped locks, batched submission
//	fsload -procs 1,2,4,8,16 -duration 1s   # GOMAXPROCS scaling sweep
//	fsload -scenario spec.yaml -duration 5s # scenario-driven workers (see below)
//
// With -scenario, the cache geometry (lines/ways), partition count, initial
// targets and per-worker address streams all come from a declarative
// scenario spec (internal/scenario) instead of the -lines/-ways/-parts
// flags and the built-in zipf mix. Each worker runs its own decorrelated
// interleaving of the compiled stream (re-seeded per worker, cycling for
// the whole -duration), so phase shifts, diurnal curves and scan storms
// from the spec all reach the concurrent engine; tenant-churn events are
// applied by worker 0 as live SetTargets updates racing the rebalancer —
// the concurrent counterpart of the deterministic fstables -scenario run.
//
// With -alloc, the initial targets only seed the run: every worker feeds
// the online allocator (internal/alloc), whose epoch decisions reach the
// engine through the rebalancer tick, and scenario churn vectors are
// ignored (the allocator notices departed tenants through decayed samples).
// Combine with -scenario to watch targets track workload phases:
//
//	fsload -scenario examples/scenarios/zipf-drift.yaml -alloc utility
//
// The -procs sweep runs one fresh engine per GOMAXPROCS setting and emits a
// single throughput/latency row per setting plus the speedup relative to
// the first setting — the data for the scaling curve in one invocation.
//
// With -net, fsload instead drives a running fsserve instance over TCP as
// a closed-loop client fleet with retry/backoff, optional hedging and
// optional network fault injection (see net.go):
//
//	fsload -net 127.0.0.1:7070 -workers 8 -duration 5s
//	fsload -net 127.0.0.1:7070 -faults -deadline 50ms -maxerr 0.05 -maxocc 0.25
//
// In either mode, -maxocc (and -maxerr in net mode) turn the report into a
// gate: fsload exits non-zero when the thresholds are not met.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fscache/internal/alloc"
	"fscache/internal/core"
	"fscache/internal/futility"
	"fscache/internal/scenario"
	"fscache/internal/shardcache"
	"fscache/internal/stats"
	"fscache/internal/xrand"
)

// latCap is the latency histogram's full scale: samples are recorded as
// lat/latCap clamped to [0,1], so quantiles resolve to latCap/latBuckets
// (~195ns) and anything slower than latCap lands in the top bucket.
const (
	latCap     = 100 * time.Microsecond
	latBuckets = 512
)

// worker owns its slice of the measurement state: a seeded address stream, an
// access counter and a latency histogram nothing else touches until the run
// is over.
type worker struct {
	id   int
	ops  uint64
	hist *stats.Histogram
}

func main() {
	var (
		shards    = flag.Int("shards", 4, "shard count (power of two)")
		stripes   = flag.Int("stripes", 1, "lock stripes per shard (power of two)")
		workers   = flag.Int("workers", 4, "concurrent worker goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "wall-clock run length")
		seed      = flag.Uint64("seed", 1, "workload seed (address streams; throughput still varies run to run)")
		lines     = flag.Int("lines", 4096, "total cache lines (power of two)")
		ways      = flag.Int("ways", 16, "associativity (power of two)")
		parts     = flag.Int("parts", 3, "partition count")
		batch     = flag.Int("batch", 1, "requests per batched submission (1 = plain Access path)")
		procsList = flag.String("procs", "", "GOMAXPROCS sweep: comma-separated settings (e.g. 1,2,4,8,16); one row per setting")
		rebalance = flag.Duration("rebalance", 250*time.Millisecond, "interval between target redistributions")
		maxOcc    = flag.Float64("maxocc", -1, "fail (exit 1) when the worst occupancy error exceeds this fraction; <0 disables")
		scen      = flag.String("scenario", "", "drive workers from this scenario spec file (overrides -lines/-ways/-parts and the synthetic address mix)")
		allocFl   = flag.String("alloc", "", "drive targets with the online allocator under this objective (utility|maxmin|phase; plus qos with -scenario) instead of the static split")

		netAddr   = flag.String("net", "", "network mode: drive the fsserve instance at this host:port instead of an in-process engine")
		setFrac   = flag.Float64("setfrac", 0.3, "net: fraction of requests that are SETs")
		keySpace  = flag.Int("keys", 65536, "net: per-tenant key-space size")
		deadline  = flag.Duration("deadline", 0, "net: wire deadline attached to each request (0 = none)")
		timeout   = flag.Duration("timeout", 2*time.Second, "net: client-side response wait")
		retries   = flag.Int("retries", 4, "net: retry budget per request")
		retryBase = flag.Duration("retrybase", 5*time.Millisecond, "net: first retry backoff (doubles per attempt, jittered)")
		retryMax  = flag.Duration("retrymax", 500*time.Millisecond, "net: retry backoff cap")
		hedge     = flag.Duration("hedge", 0, "net: reissue a GET on a fresh connection after this wait (0 disables)")
		faults    = flag.Bool("faults", false, "net: inject seeded network faults on client connections")
		faultSeed = flag.Uint64("faultseed", 2026, "net: fault injector seed")
		maxErr    = flag.Float64("maxerr", -1, "net: fail (exit 1) when the transport error rate exceeds this fraction; <0 disables")
	)
	flag.Parse()
	if *workers < 1 || *duration <= 0 || *parts < 1 {
		fail("need -workers >= 1, -duration > 0, -parts >= 1")
	}
	if *netAddr != "" {
		if *scen != "" {
			fail("-scenario drives the in-process engine; it cannot be combined with -net (give the spec to fsserve instead)")
		}
		if *allocFl != "" {
			fail("-alloc drives the in-process engine; it cannot be combined with -net (give -alloc to fsserve instead)")
		}
		if *setFrac < 0 || *setFrac >= 1 || *keySpace < 1 {
			fail("need 0 <= -setfrac < 1 and -keys >= 1")
		}
		os.Exit(runNet(netOpts{
			addr:      *netAddr,
			workers:   *workers,
			duration:  *duration,
			seed:      *seed,
			setFrac:   *setFrac,
			keySpace:  *keySpace,
			deadline:  *deadline,
			timeout:   *timeout,
			retries:   *retries,
			retryBase: *retryBase,
			retryMax:  *retryMax,
			hedge:     *hedge,
			faults:    *faults,
			faultSeed: *faultSeed,
			maxOcc:    *maxOcc,
			maxErr:    *maxErr,
		}))
	}

	if *batch < 1 {
		fail("need -batch >= 1")
	}
	opts := localOpts{
		shards:    *shards,
		stripes:   *stripes,
		workers:   *workers,
		duration:  *duration,
		seed:      *seed,
		lines:     *lines,
		ways:      *ways,
		parts:     *parts,
		batch:     *batch,
		rebalance: *rebalance,
	}
	if *scen != "" {
		ls, err := scenario.LoadSpec(*scen)
		if err != nil {
			fail(err.Error())
		}
		comp, err := scenario.Compile(ls.Spec, ls.Dir)
		if err != nil {
			fail(err.Error())
		}
		opts.comp = comp
		opts.lines = ls.Spec.Cache.Lines
		opts.ways = ls.Spec.Cache.Ways
		opts.parts = comp.Parts()
		fmt.Printf("fsload: scenario %s (%d clients, %d partitions)\n", ls.Spec.Name, len(comp.Clients), opts.parts)
	}
	opts.allocObj = *allocFl
	if *allocFl != "" {
		// Validate the objective up front so a sweep fails before its first
		// row rather than mid-run inside runLocal.
		var err error
		if opts.comp != nil {
			_, err = opts.comp.AllocObjective(*allocFl)
		} else {
			_, err = alloc.ByName(*allocFl)
		}
		if err != nil {
			fail(err.Error())
		}
	}

	if *procsList != "" {
		runSweep(opts, parseProcs(*procsList), *maxOcc)
		return
	}

	fmt.Printf("fsload: %d lines / %d ways / %d shards × %d stripes, %d workers, %d partitions, batch %d, %v\n",
		opts.lines, opts.ways, *shards, *stripes, *workers, opts.parts, *batch, *duration)

	r := runLocal(opts)

	fmt.Printf("\n  total: %d accesses in %v (%.2fM acc/s aggregate), %d rebalances\n",
		r.total, r.elapsed.Round(time.Millisecond), r.accPerSec/1e6, r.rebalances)
	fmt.Printf("\n  %-8s %12s %10s %10s %10s\n", "worker", "accesses", "p50", "p90", "p99")
	for _, w := range r.ws {
		fmt.Printf("  %-8d %12d %10v %10v %10v\n", w.id, w.ops,
			latQ(w.hist, 0.5), latQ(w.hist, 0.9), latQ(w.hist, 0.99))
	}

	fmt.Printf("\n  %-10s %8s %10s %10s %8s %10s\n",
		"partition", "target", "occupancy", "error", "miss", "aef")
	for p := 0; p < opts.parts; p++ {
		fmt.Printf("  %-10d %8d %10.1f %9.1f%% %8.4f %10.4f\n",
			p, r.targets[p], r.occ[p], 100*r.occErr[p], r.snap.Parts[p].MissRate(), r.snap.Parts[p].AEF())
	}
	if *allocFl != "" {
		reallocs, drifts := 0, 0
		for _, d := range r.decisions {
			if d.Changed {
				reallocs++
			}
			if d.Drift {
				drifts++
			}
		}
		fmt.Printf("\n  alloc %s: %d epochs, %d reallocations, %d drift epochs, %d installs\n",
			*allocFl, r.epochs, reallocs, drifts, r.installs)
		tail := r.decisions
		const maxShown = 8
		if len(tail) > maxShown {
			fmt.Printf("  … %d earlier decisions elided; last %d (drift *, changed !):\n", len(tail)-maxShown, maxShown)
			tail = tail[len(tail)-maxShown:]
		}
		for _, d := range tail {
			mark, ch := " ", " "
			if d.Drift {
				mark = "*"
			}
			if d.Changed {
				ch = "!"
			}
			fmt.Printf("   %s%s e%-4d @%-10d div %.3f miss %.4f  %v\n",
				mark, ch, d.Epoch, d.Access, d.Divergence, d.MissRatio, d.Targets)
		}
	}

	fmt.Printf("\n  worst occupancy error: %.1f%%\n", 100*r.worst)
	if *maxOcc >= 0 && r.worst > *maxOcc {
		fail(fmt.Sprintf("worst occupancy error %.1f%% exceeds -maxocc %.1f%%", 100*r.worst, 100**maxOcc))
	}
}

// localOpts configures one in-process measurement run.
type localOpts struct {
	shards, stripes, workers  int
	lines, ways, parts, batch int
	duration, rebalance       time.Duration
	seed                      uint64
	// comp, when non-nil, replaces the synthetic zipf mix with compiled
	// scenario streams (one decorrelated interleaving per worker) and the
	// index-proportional targets with the spec's shares.
	comp *scenario.Compiled
	// allocObj, when non-empty, names the online allocation objective: every
	// worker feeds the allocator, the rebalancer installs its epoch targets,
	// and static targets (and scenario churn vectors) are ignored after the
	// initial split.
	allocObj string
}

// localResult is everything the reports need from one run.
type localResult struct {
	elapsed    time.Duration
	total      uint64
	accPerSec  float64
	rebalances uint64
	ws         []*worker
	targets    []int
	occ        []float64
	occErr     []float64
	worst      float64
	snap       core.Snapshot
	// installs and decisions report the online allocator's activity when
	// -alloc is set: rebalancer target installs, epochs closed, and the
	// retained decision log (oldest first).
	installs  uint64
	epochs    int
	decisions []alloc.Decision
}

// runLocal builds a fresh engine, hammers it with opts.workers goroutines
// for opts.duration while a background rebalancer redistributes targets,
// checks invariants after quiesce and returns the aggregates. Each call is
// independent, so sweep rows never share warmed state.
func runLocal(opts localOpts) localResult {
	e := shardcache.New(shardcache.Config{
		Lines:   opts.lines,
		Ways:    opts.ways,
		Shards:  opts.shards,
		Stripes: opts.stripes,
		Parts:   opts.parts,
		Ranking: futility.CoarseLRU,
		Seed:    opts.seed,
	})
	var targets []int
	if opts.comp != nil {
		targets = opts.comp.Targets(opts.lines, opts.comp.InitialLive())
	} else {
		// Targets proportional to partition index+1, summing exactly to
		// capacity, so the occupancy-error report has distinct
		// per-partition setpoints.
		weights := make([]float64, opts.parts)
		for p := range weights {
			weights[p] = float64(p + 1)
		}
		targets = apportionInts(opts.lines, weights)
	}
	e.SetTargets(targets)

	// With -alloc, an online allocator samples every worker's accesses and
	// its epoch targets reach the engine through the rebalancer tick; the
	// static split above only seeds the first epoch.
	var a *alloc.Allocator
	var src shardcache.TargetSource
	if opts.allocObj != "" {
		a = newLoadAllocator(opts, targets)
		src = a
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	ws := make([]*worker, opts.workers)
	for i := range ws {
		ws[i] = &worker{id: i, hist: stats.NewHistogram(latBuckets)}
	}
	start := time.Now()
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			var next func() (uint64, int)
			if opts.comp != nil {
				next = scenarioFeed(e, opts, w.id)
			} else {
				rng := xrand.New(xrand.Mix64(opts.seed^0xf10ad) ^ xrand.Mix64(uint64(w.id+1)))
				zipf := xrand.NewZipf(rng, 0.9, 4*opts.lines)
				next = func() (uint64, int) {
					part := rng.Intn(opts.parts)
					// Mix64-finalized structured keys; see shardcache.BuildSchedule
					// on H3 null spaces for why raw low-entropy keys are unsafe.
					return xrand.Mix64(uint64(part+1)<<24 + uint64(zipf.Next())), part
				}
			}
			if opts.batch > 1 {
				b := e.NewBatch()
				reqs := make([]shardcache.Access, opts.batch)
				results := make([]core.AccessResult, opts.batch)
				for !stop.Load() {
					for i := range reqs {
						reqs[i].Addr, reqs[i].Part = next()
					}
					t0 := time.Now()
					b.Access(reqs, results)
					// Amortized per-access latency: the whole flush divided
					// by its size, recorded once per request for comparable
					// quantiles against the unbatched path.
					lat := time.Since(t0) / time.Duration(opts.batch)
					if a != nil {
						for i := range reqs {
							a.Observe(reqs[i].Part, reqs[i].Addr)
						}
					}
					s := float64(lat) / float64(latCap)
					for range reqs {
						w.hist.Add(s)
					}
					w.ops += uint64(opts.batch)
				}
				return
			}
			for !stop.Load() {
				addr, part := next()
				t0 := time.Now()
				e.Access(addr, part)
				lat := time.Since(t0)
				if a != nil {
					a.Observe(part, addr)
				}
				w.hist.Add(float64(lat) / float64(latCap))
				w.ops++
			}
		}(w)
	}
	rb := e.StartRebalancerSource(opts.rebalance, src)

	time.Sleep(opts.duration)
	stop.Store(true)
	wg.Wait()
	rb.Stop()
	elapsed := time.Since(start)

	if err := e.CheckInvariants(); err != nil {
		fail(fmt.Sprintf("engine invariants violated after run: %v", err))
	}

	r := localResult{
		elapsed:    elapsed,
		rebalances: rb.Rebalances(),
		ws:         ws,
		targets:    targets,
		occ:        make([]float64, opts.parts),
		occErr:     make([]float64, opts.parts),
		snap:       e.Snapshot(),
	}
	if a != nil {
		r.installs = rb.Installs()
		r.epochs = a.Epoch()
		r.decisions, _ = a.Log()
	}
	if opts.comp != nil || a != nil {
		// Scenario churn or the online allocator may have retargeted
		// partitions mid-run; report occupancy error against the targets the
		// engine actually holds.
		for p := 0; p < opts.parts; p++ {
			r.targets[p] = r.snap.Parts[p].Target
		}
	}
	for _, w := range ws {
		r.total += w.ops
	}
	r.accPerSec = float64(r.total) / elapsed.Seconds()
	for p := 0; p < opts.parts; p++ {
		r.occ[p] = e.MeanOccupancy(p)
		if r.targets[p] > 0 {
			// Dead (churned-out) tenants hold target 0; their residual
			// occupancy decays at the eviction rate, so a relative error
			// against 0 is not meaningful and they are skipped here.
			r.occErr[p] = math.Abs(r.occ[p]-float64(r.targets[p])) / float64(r.targets[p])
		}
		if r.occErr[p] > r.worst {
			r.worst = r.occErr[p]
		}
	}
	if r.snap.Accesses != r.total {
		fail(fmt.Sprintf("accounting: engine recorded %d accesses, workers performed %d", r.snap.Accesses, r.total))
	}
	return r
}

// newLoadAllocator builds the online allocator for one run. Scenario runs
// take the spec-derived configuration (objective, floors, epoch length);
// synthetic runs use the alloc package defaults over the flag geometry. The
// objective name was validated in main, so failures here are config bugs.
func newLoadAllocator(opts localOpts, initial []int) *alloc.Allocator {
	if opts.comp != nil {
		cfg, err := opts.comp.AllocConfig(opts.allocObj)
		if err != nil {
			fail(err.Error())
		}
		return alloc.New(cfg)
	}
	obj, err := alloc.ByName(opts.allocObj)
	if err != nil {
		fail(err.Error())
	}
	return alloc.New(alloc.Config{
		Parts:     opts.parts,
		Lines:     opts.lines,
		Objective: obj,
		Initial:   append([]int(nil), initial...),
		Seed:      opts.seed,
	})
}

// scenarioFeed returns a worker's address source for scenario mode: its own
// re-seeded interleaving of the compiled stream, cycled for the whole run
// (one pass covers spec.Accesses operations; wall-clock runs keep going).
// Worker 0 doubles as the churn driver, applying tenant-churn target vectors
// to the live engine as its stream reaches them; other workers skip churn
// ops so the target vector has a single writer besides the rebalancer. With
// -alloc, churn vectors are dropped entirely: the allocator is the sole
// target authority and notices departed tenants through decayed samples.
func scenarioFeed(e *shardcache.Engine, opts localOpts, id int) func() (uint64, int) {
	seed := func(epoch uint64) uint64 {
		return xrand.Mix64(opts.comp.Spec.Seed ^ uint64(id+1)*0x9e3779b97f4a7c15 ^ epoch*0xbf58476d1ce4e5b9)
	}
	epoch := uint64(0)
	st := opts.comp.NewStreamSeeded(opts.lines, seed(0))
	var op scenario.Op
	return func() (uint64, int) {
		for {
			if !st.Next(&op) {
				epoch++
				st = opts.comp.NewStreamSeeded(opts.lines, seed(epoch))
				continue
			}
			if op.Kind == scenario.OpChurn {
				if id == 0 && opts.allocObj == "" {
					e.SetTargets(op.Targets)
				}
				continue
			}
			// Mix64-finalize the structured scenario address (a bijection,
			// so client address spaces stay disjoint); see
			// shardcache.BuildSchedule on H3 null spaces.
			return xrand.Mix64(op.Access.Addr), op.Part
		}
	}
}

// runSweep runs one fresh engine per GOMAXPROCS setting and prints one
// throughput/latency row per setting, plus the speedup relative to the
// first setting — the whole scaling curve in one invocation.
func runSweep(opts localOpts, procs []int, maxOcc float64) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	fmt.Printf("fsload sweep: %d lines / %d ways / %d shards × %d stripes, %d workers, %d partitions, batch %d, %v per setting (num_cpu %d)\n\n",
		opts.lines, opts.ways, opts.shards, opts.stripes, opts.workers, opts.parts, opts.batch, opts.duration, runtime.NumCPU())
	fmt.Printf("  %-6s %12s %10s %10s %10s %10s %8s %8s\n",
		"procs", "accesses", "acc/s", "p50", "p90", "p99", "occ-err", "speedup")

	base := 0.0
	worstOcc := 0.0
	for i, p := range procs {
		runtime.GOMAXPROCS(p)
		r := runLocal(opts)
		merged := stats.NewHistogram(latBuckets)
		for _, w := range r.ws {
			merged.Merge(w.hist)
		}
		if i == 0 {
			base = r.accPerSec
		}
		if r.worst > worstOcc {
			worstOcc = r.worst
		}
		fmt.Printf("  %-6d %12d %9.2fM %10v %10v %10v %7.1f%% %7.2fx\n",
			p, r.total, r.accPerSec/1e6,
			latQ(merged, 0.5), latQ(merged, 0.9), latQ(merged, 0.99),
			100*r.worst, r.accPerSec/base)
	}
	if maxOcc >= 0 && worstOcc > maxOcc {
		fail(fmt.Sprintf("worst occupancy error %.1f%% exceeds -maxocc %.1f%%", 100*worstOcc, 100*maxOcc))
	}
}

// parseProcs parses the -procs comma list.
func parseProcs(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fail(fmt.Sprintf("bad -procs entry %q (need positive integers)", f))
		}
		out = append(out, n)
	}
	return out
}

// latQ converts a histogram quantile (a fraction of latCap) back to a
// duration.
func latQ(h *stats.Histogram, q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(latCap)).Round(10 * time.Nanosecond)
}

// apportionInts splits total proportionally to weights with largest-remainder
// rounding, so the result sums exactly to total (the contract SetTargets
// expects when targets should cover capacity).
func apportionInts(total int, weights []float64) []int {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	out := make([]int, len(weights))
	rem := make([]float64, len(weights))
	given := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		out[i] = int(exact)
		rem[i] = exact - float64(out[i])
		given += out[i]
	}
	for given < total {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		out[best]++
		rem[best] = -1
		given++
	}
	return out
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "fsload:", msg)
	os.Exit(1)
}
