// Command fsload is a closed-loop load generator for the sharded concurrent
// engine (internal/shardcache). It hammers one Engine with free-running
// worker goroutines for a fixed wall-clock duration while a background
// rebalancer redistributes per-partition targets, then reports aggregate
// throughput, per-worker access-latency quantiles and the per-partition
// occupancy error against the configured targets — the operational health
// check for the sharded engine, and the -race smoke test CI runs.
//
// Unlike the deterministic test driver (shardcache.RunDeterministic), fsload
// deliberately lets workers share shards and race against the rebalancer:
// the point is to exercise the engine the way a real concurrent client
// would. Throughput numbers therefore vary run to run; the occupancy errors
// should not (the feedback controllers converge regardless of interleaving).
//
// Examples:
//
//	fsload                                  # 4 shards, 4 workers, 5s
//	fsload -shards 1 -workers 4             # contention baseline
//	fsload -shards 2 -workers 4 -duration 2s -seed 7
//
// With -net, fsload instead drives a running fsserve instance over TCP as
// a closed-loop client fleet with retry/backoff, optional hedging and
// optional network fault injection (see net.go):
//
//	fsload -net 127.0.0.1:7070 -workers 8 -duration 5s
//	fsload -net 127.0.0.1:7070 -faults -deadline 50ms -maxerr 0.05 -maxocc 0.25
//
// In either mode, -maxocc (and -maxerr in net mode) turn the report into a
// gate: fsload exits non-zero when the thresholds are not met.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fscache/internal/futility"
	"fscache/internal/shardcache"
	"fscache/internal/stats"
	"fscache/internal/xrand"
)

// latCap is the latency histogram's full scale: samples are recorded as
// lat/latCap clamped to [0,1], so quantiles resolve to latCap/latBuckets
// (~195ns) and anything slower than latCap lands in the top bucket.
const (
	latCap     = 100 * time.Microsecond
	latBuckets = 512
)

// worker owns its slice of the measurement state: a seeded address stream, an
// access counter and a latency histogram nothing else touches until the run
// is over.
type worker struct {
	id   int
	ops  uint64
	hist *stats.Histogram
}

func main() {
	var (
		shards    = flag.Int("shards", 4, "shard count (power of two)")
		workers   = flag.Int("workers", 4, "concurrent worker goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "wall-clock run length")
		seed      = flag.Uint64("seed", 1, "workload seed (address streams; throughput still varies run to run)")
		lines     = flag.Int("lines", 4096, "total cache lines (power of two)")
		ways      = flag.Int("ways", 16, "associativity (power of two)")
		parts     = flag.Int("parts", 3, "partition count")
		rebalance = flag.Duration("rebalance", 250*time.Millisecond, "interval between target redistributions")
		maxOcc    = flag.Float64("maxocc", -1, "fail (exit 1) when the worst occupancy error exceeds this fraction; <0 disables")

		netAddr   = flag.String("net", "", "network mode: drive the fsserve instance at this host:port instead of an in-process engine")
		setFrac   = flag.Float64("setfrac", 0.3, "net: fraction of requests that are SETs")
		keySpace  = flag.Int("keys", 65536, "net: per-tenant key-space size")
		deadline  = flag.Duration("deadline", 0, "net: wire deadline attached to each request (0 = none)")
		timeout   = flag.Duration("timeout", 2*time.Second, "net: client-side response wait")
		retries   = flag.Int("retries", 4, "net: retry budget per request")
		retryBase = flag.Duration("retrybase", 5*time.Millisecond, "net: first retry backoff (doubles per attempt, jittered)")
		retryMax  = flag.Duration("retrymax", 500*time.Millisecond, "net: retry backoff cap")
		hedge     = flag.Duration("hedge", 0, "net: reissue a GET on a fresh connection after this wait (0 disables)")
		faults    = flag.Bool("faults", false, "net: inject seeded network faults on client connections")
		faultSeed = flag.Uint64("faultseed", 2026, "net: fault injector seed")
		maxErr    = flag.Float64("maxerr", -1, "net: fail (exit 1) when the transport error rate exceeds this fraction; <0 disables")
	)
	flag.Parse()
	if *workers < 1 || *duration <= 0 || *parts < 1 {
		fail("need -workers >= 1, -duration > 0, -parts >= 1")
	}
	if *netAddr != "" {
		if *setFrac < 0 || *setFrac >= 1 || *keySpace < 1 {
			fail("need 0 <= -setfrac < 1 and -keys >= 1")
		}
		os.Exit(runNet(netOpts{
			addr:      *netAddr,
			workers:   *workers,
			duration:  *duration,
			seed:      *seed,
			setFrac:   *setFrac,
			keySpace:  *keySpace,
			deadline:  *deadline,
			timeout:   *timeout,
			retries:   *retries,
			retryBase: *retryBase,
			retryMax:  *retryMax,
			hedge:     *hedge,
			faults:    *faults,
			faultSeed: *faultSeed,
			maxOcc:    *maxOcc,
			maxErr:    *maxErr,
		}))
	}

	e := shardcache.New(shardcache.Config{
		Lines:   *lines,
		Ways:    *ways,
		Shards:  *shards,
		Parts:   *parts,
		Ranking: futility.CoarseLRU,
		Seed:    *seed,
	})
	// Targets proportional to partition index+1, summing exactly to capacity,
	// so the occupancy-error report has distinct per-partition setpoints.
	weights := make([]float64, *parts)
	for p := range weights {
		weights[p] = float64(p + 1)
	}
	targets := apportionInts(*lines, weights)
	e.SetTargets(targets)

	fmt.Printf("fsload: %d lines / %d ways / %d shards, %d workers, %d partitions, %v\n",
		*lines, *ways, *shards, *workers, *parts, *duration)

	var stop atomic.Bool
	var wg sync.WaitGroup
	ws := make([]*worker, *workers)
	for i := range ws {
		ws[i] = &worker{id: i, hist: stats.NewHistogram(latBuckets)}
	}
	start := time.Now()
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			rng := xrand.New(xrand.Mix64(*seed^0xf10ad) ^ xrand.Mix64(uint64(w.id+1)))
			zipf := xrand.NewZipf(rng, 0.9, 4**lines)
			for !stop.Load() {
				part := rng.Intn(*parts)
				// Mix64-finalized structured keys; see shardcache.BuildSchedule
				// on H3 null spaces for why raw low-entropy keys are unsafe.
				addr := xrand.Mix64(uint64(part+1)<<24 + uint64(zipf.Next()))
				t0 := time.Now()
				e.Access(addr, part)
				lat := time.Since(t0)
				w.hist.Add(float64(lat) / float64(latCap))
				w.ops++
			}
		}(w)
	}
	var rebalances int
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(*rebalance)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			e.Rebalance()
			rebalances++
		}
	}()

	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	<-done
	elapsed := time.Since(start)

	if err := e.CheckInvariants(); err != nil {
		fail(fmt.Sprintf("engine invariants violated after run: %v", err))
	}

	var total uint64
	for _, w := range ws {
		total += w.ops
	}
	fmt.Printf("\n  total: %d accesses in %v (%.2fM acc/s aggregate), %d rebalances\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds()/1e6, rebalances)
	fmt.Printf("\n  %-8s %12s %10s %10s %10s\n", "worker", "accesses", "p50", "p90", "p99")
	for _, w := range ws {
		fmt.Printf("  %-8d %12d %10v %10v %10v\n", w.id, w.ops,
			latQ(w.hist, 0.5), latQ(w.hist, 0.9), latQ(w.hist, 0.99))
	}

	snap := e.Snapshot()
	fmt.Printf("\n  %-10s %8s %10s %10s %8s %10s\n",
		"partition", "target", "occupancy", "error", "miss", "aef")
	worst := 0.0
	for p := 0; p < *parts; p++ {
		occ := e.MeanOccupancy(p)
		errFrac := math.Abs(occ-float64(targets[p])) / float64(targets[p])
		if errFrac > worst {
			worst = errFrac
		}
		fmt.Printf("  %-10d %8d %10.1f %9.1f%% %8.4f %10.4f\n",
			p, targets[p], occ, 100*errFrac, snap.Parts[p].MissRate(), snap.Parts[p].AEF())
	}
	fmt.Printf("\n  worst occupancy error: %.1f%%\n", 100*worst)
	if snap.Accesses != total {
		fail(fmt.Sprintf("accounting: engine recorded %d accesses, workers performed %d", snap.Accesses, total))
	}
	if *maxOcc >= 0 && worst > *maxOcc {
		fail(fmt.Sprintf("worst occupancy error %.1f%% exceeds -maxocc %.1f%%", 100*worst, 100**maxOcc))
	}
}

// latQ converts a histogram quantile (a fraction of latCap) back to a
// duration.
func latQ(h *stats.Histogram, q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(latCap)).Round(10 * time.Nanosecond)
}

// apportionInts splits total proportionally to weights with largest-remainder
// rounding, so the result sums exactly to total (the contract SetTargets
// expects when targets should cover capacity).
func apportionInts(total int, weights []float64) []int {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	out := make([]int, len(weights))
	rem := make([]float64, len(weights))
	given := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		out[i] = int(exact)
		rem[i] = exact - float64(out[i])
		given += out[i]
	}
	for given < total {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		out[best]++
		rem[best] = -1
		given++
	}
	return out
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "fsload:", msg)
	os.Exit(1)
}
