package main

// Network mode: fsload -net <addr> turns the load generator into a
// closed-loop TCP client fleet for fsserve. Each worker owns one
// connection and drives synchronous request/response cycles with:
//
//   - retry on transport error with deterministic exponential backoff and
//     seeded jitter (harness.Backoff), reconnecting as needed;
//   - optional hedging: a GET that has not answered within -hedge is
//     reissued on a fresh connection and the reissue's response is used
//     (late originals are discarded by sequence matching);
//   - optional client-side network fault injection (-faults), so a soak
//     proves the client/server pair re-converges after bursts of resets,
//     torn frames and corrupted prefixes;
//   - per-worker latency histograms and status accounting, plus a final
//     server stats fetch that reports each tenant's occupancy error.
//
// With -maxocc / -maxerr set, fsload exits non-zero when the run's worst
// tenant occupancy error or transport error rate exceeds the threshold —
// the CI soak gate.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fscache/internal/faultinject"
	"fscache/internal/harness"
	"fscache/internal/server"
	"fscache/internal/stats"
	"fscache/internal/xrand"
)

// netLatCap is the network-mode latency full scale (loopback RTTs are tens
// of microseconds; anything past 10ms is tail enough to clamp).
const netLatCap = 10 * time.Millisecond

type netOpts struct {
	addr      string
	workers   int
	duration  time.Duration
	seed      uint64
	setFrac   float64
	keySpace  int
	deadline  time.Duration // wire deadline sent with each request; 0 = none
	timeout   time.Duration // client-side wait for a response
	retries   int
	retryBase time.Duration
	retryMax  time.Duration
	hedge     time.Duration // 0 disables hedging
	faults    bool
	faultSeed uint64
	maxOcc    float64 // threshold on worst tenant occupancy error; <0 = off
	maxErr    float64 // threshold on transport error rate; <0 = off
}

// netWorker is one closed-loop client connection and its private stats.
type netWorker struct {
	id   int
	opts *netOpts
	inj  *faultinject.NetInjector
	stop *atomic.Bool

	rng     *xrand.Rand
	zipf    *xrand.Zipf
	backoff *harness.Backoff

	nc  net.Conn
	br  *bufio.Reader
	seq uint32
	buf []byte

	ops, reqErrs, retries, hedges, reconnects, stale uint64
	statuses                                         [8]uint64
	hist                                             *stats.Histogram
}

var errNoResponse = errors.New("no response within retry budget")

func (w *netWorker) dial() error {
	nc, err := net.Dial("tcp", w.opts.addr)
	if err != nil {
		return err
	}
	if w.inj != nil {
		nc = w.inj.WrapConn(nc)
	}
	w.nc = nc
	w.br = bufio.NewReader(nc)
	return nil
}

func (w *netWorker) dropConn() {
	if w.nc != nil {
		_ = w.nc.Close()
		w.nc = nil
		w.br = nil
	}
}

// rpc drives one request to completion: write, await the matching seq,
// retry on transport failure with backoff, optionally hedging slow GETs.
func (w *netWorker) rpc(req *server.Request) (server.Response, error) {
	hedged := false
	for attempt := 1; ; attempt++ {
		if w.stop.Load() {
			return server.Response{}, errNoResponse
		}
		if w.nc == nil {
			if err := w.dial(); err != nil {
				w.reconnects++
				if attempt > w.opts.retries {
					return server.Response{}, err
				}
				w.retries++
				time.Sleep(w.backoff.Delay(attempt))
				continue
			}
		}
		w.seq++
		req.Seq = w.seq
		frame := server.AppendRequest(w.buf[:0], req)
		w.buf = frame[:0]

		wait := w.opts.timeout
		if w.opts.hedge > 0 && !hedged && req.Op == server.OpGet && w.opts.hedge < wait {
			wait = w.opts.hedge
		}
		_ = w.nc.SetWriteDeadline(time.Now().Add(w.opts.timeout))
		_, err := w.nc.Write(frame)
		if err == nil {
			var resp server.Response
			resp, err = w.awaitSeq(req.Seq, wait)
			if err == nil {
				return resp, nil
			}
		}
		// Transport failure or timeout: the connection's framing state is
		// unknown, so drop it and retry (or hedge) on a fresh one.
		w.dropConn()
		w.reconnects++
		if w.opts.hedge > 0 && !hedged && req.Op == server.OpGet && isTimeout(err) {
			// Hedge: reissue immediately on a new connection; the original
			// request's late response dies with the dropped conn.
			hedged = true
			w.hedges++
			continue
		}
		if attempt > w.opts.retries {
			return server.Response{}, errNoResponse
		}
		w.retries++
		time.Sleep(w.backoff.Delay(attempt))
	}
}

// awaitSeq reads frames until seq matches (discarding stale responses from
// abandoned requests) or the wait expires.
func (w *netWorker) awaitSeq(seq uint32, wait time.Duration) (server.Response, error) {
	_ = w.nc.SetReadDeadline(time.Now().Add(wait))
	for {
		var err error
		w.buf, err = server.ReadFrame(w.br, w.buf)
		if err != nil {
			return server.Response{}, err
		}
		resp, err := server.ParseResponse(w.buf)
		if err != nil {
			return server.Response{}, err
		}
		if resp.Seq == seq {
			// Value aliases w.buf, which the next rpc reuses; copy out.
			resp.Value = append([]byte(nil), resp.Value...)
			return resp, nil
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (w *netWorker) run(tenants int) {
	keybuf := make([]byte, 0, 32)
	val := []byte("fsload-value-payload-0123456789")
	for !w.stop.Load() {
		tenant := uint8(w.rng.Intn(tenants))
		keybuf = fmt.Appendf(keybuf[:0], "t%d-k%08d", tenant, w.zipf.Next()%w.opts.keySpace)
		req := server.Request{Tenant: tenant, Key: keybuf}
		if w.rng.Bool(w.opts.setFrac) {
			req.Op = server.OpSet
			req.Value = val
		} else {
			req.Op = server.OpGet
		}
		if w.opts.deadline > 0 {
			req.DeadlineUS = uint32(w.opts.deadline / time.Microsecond)
		}
		t0 := time.Now()
		resp, err := w.rpc(&req)
		lat := time.Since(t0)
		w.ops++
		if err != nil {
			w.reqErrs++
			continue
		}
		w.hist.Add(float64(lat) / float64(netLatCap))
		if int(resp.Status) < len(w.statuses) {
			w.statuses[resp.Status]++
		}
		if resp.Flags&server.FlagStale != 0 {
			w.stale++
		}
	}
	w.dropConn()
}

// fetchStats asks the server for a stats snapshot over a clean connection
// (no fault injection — this is the measurement path).
func fetchStats(addr string, timeout time.Duration) (server.StatsSnapshot, error) {
	var snap server.StatsSnapshot
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return snap, err
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(timeout))
	req := server.Request{Op: server.OpStats, Seq: 1}
	if _, err := nc.Write(server.AppendRequest(nil, &req)); err != nil {
		return snap, err
	}
	buf, err := server.ReadFrame(bufio.NewReader(nc), nil)
	if err != nil {
		return snap, err
	}
	resp, err := server.ParseResponse(buf)
	if err != nil {
		return snap, err
	}
	if resp.Status != server.StatusOK {
		return snap, fmt.Errorf("stats request answered %v", resp.Status)
	}
	if err := json.Unmarshal(resp.Value, &snap); err != nil {
		return snap, fmt.Errorf("stats payload: %w", err)
	}
	return snap, nil
}

// runNet executes network mode and returns the process exit code.
func runNet(o netOpts) int {
	pre, err := fetchStats(o.addr, o.timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsload: cannot reach server at %s: %v\n", o.addr, err)
		return 1
	}
	tenants := len(pre.Tenants)
	fmt.Printf("fsload: net mode against %s: %d tenants, %d workers, %v (setfrac %.2f, deadline %v, hedge %v, faults %v)\n",
		o.addr, tenants, o.workers, o.duration, o.setFrac, o.deadline, o.hedge, o.faults)

	var inj *faultinject.NetInjector
	if o.faults {
		inj = faultinject.NewNetInjector(o.faultSeed, faultinject.NetFaults{
			Reset:      0.005,
			TornWrite:  0.005,
			CorruptLen: 0.005,
			StallRead:  0.002,
			Stall:      2 * time.Millisecond,
		})
	}

	var stop atomic.Bool
	ws := make([]*netWorker, o.workers)
	for i := range ws {
		rng := xrand.New(xrand.Mix64(o.seed^0x5e12e) ^ xrand.Mix64(uint64(i+1)))
		ws[i] = &netWorker{
			id:      i,
			opts:    &o,
			inj:     inj,
			stop:    &stop,
			rng:     rng,
			zipf:    xrand.NewZipf(rng, 0.9, 4*o.keySpace),
			backoff: harness.NewBackoff(o.retryBase, o.retryMax, 0.2, o.seed^uint64(i+1)),
			hist:    stats.NewHistogram(latBuckets),
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for _, w := range ws {
		wg.Add(1)
		go func(w *netWorker) {
			defer wg.Done()
			w.run(tenants)
		}(w)
	}
	time.Sleep(o.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var total, reqErrs, retries, hedges, reconnects, stale uint64
	var statuses [8]uint64
	merged := stats.NewHistogram(latBuckets)
	for _, w := range ws {
		total += w.ops
		reqErrs += w.reqErrs
		retries += w.retries
		hedges += w.hedges
		reconnects += w.reconnects
		stale += w.stale
		for s, n := range w.statuses {
			statuses[s] += n
		}
		merged.Merge(w.hist)
	}
	fmt.Printf("\n  total: %d requests in %v (%.1fk req/s), %d transport errors, %d retries, %d hedges, %d reconnects\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds()/1e3,
		reqErrs, retries, hedges, reconnects)
	fmt.Printf("  status: ok %d, notfound %d, shed %d, deadline %d, overload %d, draining %d, badreq %d, error %d (stale serves %d)\n",
		statuses[server.StatusOK], statuses[server.StatusNotFound], statuses[server.StatusShed],
		statuses[server.StatusDeadline], statuses[server.StatusOverload], statuses[server.StatusDraining],
		statuses[server.StatusBadRequest], statuses[server.StatusError], stale)
	fmt.Printf("  latency: p50 %v  p90 %v  p99 %v\n",
		netLatQ(merged, 0.5), netLatQ(merged, 0.9), netLatQ(merged, 0.99))
	if inj != nil {
		fmt.Printf("  faults injected: %d resets, %d torn, %d corrupted, %d stalls\n",
			inj.Resets.Load(), inj.Torn.Load(), inj.Corrupted.Load(), inj.Stalls.Load())
	}

	post, err := fetchStats(o.addr, o.timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsload: final stats fetch failed: %v\n", err)
		return 1
	}
	// The gate uses the instantaneous partition size (Size), not the
	// time-averaged MeanOccupancy: the mean includes the cold-fill ramp,
	// which would dominate any short soak. Size is what the partitions
	// converged to by the end of the run.
	fmt.Printf("\n  %-8s %-12s %8s %8s %10s %10s %10s %10s\n",
		"tenant", "class", "target", "size", "error", "meanocc", "shed", "stale")
	worstOcc := 0.0
	for i, t := range post.Tenants {
		errFrac := 0.0
		if t.Target > 0 {
			errFrac = math.Abs(float64(t.Size-t.Target)) / float64(t.Target)
		}
		if errFrac > worstOcc {
			worstOcc = errFrac
		}
		fmt.Printf("  %-8d %-12s %8d %8d %9.1f%% %10.1f %10d %10d\n",
			i, t.Class, t.Target, t.Size, 100*errFrac, t.MeanOccupancy, t.Shed, t.StaleServes)
	}
	fmt.Printf("\n  server: %d bad frames, %d slow clients, %d panics; worst occupancy error %.1f%%\n",
		post.BadFrames, post.SlowClients, post.Panics, 100*worstOcc)

	code := 0
	if post.Panics > 0 {
		fmt.Fprintf(os.Stderr, "fsload: FAIL: server recorded %d panic(s)\n", post.Panics)
		code = 1
	}
	errRate := 0.0
	if total > 0 {
		errRate = float64(reqErrs) / float64(total)
	}
	if o.maxErr >= 0 && errRate > o.maxErr {
		fmt.Fprintf(os.Stderr, "fsload: FAIL: transport error rate %.2f%% exceeds -maxerr %.2f%%\n",
			100*errRate, 100*o.maxErr)
		code = 1
	}
	if o.maxOcc >= 0 && worstOcc > o.maxOcc {
		fmt.Fprintf(os.Stderr, "fsload: FAIL: worst occupancy error %.1f%% exceeds -maxocc %.1f%%\n",
			100*worstOcc, 100*o.maxOcc)
		code = 1
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "fsload: FAIL: no requests completed")
		code = 1
	}
	return code
}

func netLatQ(h *stats.Histogram, q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(netLatCap)).Round(time.Microsecond)
}
