package main

import (
	"reflect"
	"testing"

	"fscache/internal/futility"
)

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"a,b,c":    {"a", "b", "c"},
		" a , b ":  {"a", "b"},
		"a,,b":     {"a", "b"},
		"":         nil,
		"gromacs":  {"gromacs"},
		",,,":      nil,
		"x, y ,,z": {"x", "y", "z"},
	}
	for in, want := range cases {
		if got := splitList(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitList(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseRank(t *testing.T) {
	for in, want := range map[string]futility.Kind{
		"coarse-lru": futility.CoarseLRU,
		"lru":        futility.LRU,
		"lfu":        futility.LFU,
		"opt":        futility.OPT,
	} {
		got, err := parseRank(in)
		if err != nil || got != want {
			t.Errorf("parseRank(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseRank("belady"); err == nil {
		t.Error("unknown rank accepted")
	}
}

func TestParseTargetsEqual(t *testing.T) {
	got, err := parseTargets("equal", 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{25, 25, 25, 25}) {
		t.Fatalf("targets = %v", got)
	}
}

func TestParseTargetsExplicit(t *testing.T) {
	got, err := parseTargets("10,20,30", 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{10, 20, 30}) {
		t.Fatalf("targets = %v", got)
	}
}

func TestParseTargetsTrailingEqual(t *testing.T) {
	got, err := parseTargets("40,equal", 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{40, 30, 30}) {
		t.Fatalf("targets = %v", got)
	}
}

func TestParseTargetsErrors(t *testing.T) {
	cases := []struct {
		spec  string
		parts int
	}{
		{"10,20", 3},       // too few
		{"10,20,30,40", 3}, // too many
		{"equal,10", 2},    // equal not last
		{"abc", 1},         // not a number
		{"-5", 1},          // negative
		{"200,equal", 2},   // over capacity
		{"10,20,equal", 2}, // equal with no remaining threads
	}
	for _, c := range cases {
		if _, err := parseTargets(c.spec, c.parts, 100); err == nil {
			t.Errorf("parseTargets(%q, %d) accepted", c.spec, c.parts)
		}
	}
}

func TestFmtAlphas(t *testing.T) {
	if got := fmtAlphas([]float64{1, 2.5}); got != "[1 2.5]" {
		t.Errorf("fmtAlphas = %q", got)
	}
}
