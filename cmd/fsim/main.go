// Command fsim runs one multiprogrammed cache-partitioning simulation:
// a mix of benchmark threads over a shared, partitioned L2 with the
// paper's timing model, printing per-thread IPC and per-partition
// occupancy/associativity.
//
// Examples:
//
//	fsim -scheme fs -benchmarks gromacs,lbm,lbm,lbm -targets 4096,equal
//	fsim -scheme vantage -rank opt -lines 32768 -benchmarks mcf,mcf
//	fsim -scheme pf -array random-16 -benchmarks mcf,omnetpp,lbm,astar
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fscache/internal/experiments"
	"fscache/internal/futility"
	"fscache/internal/profiling"
	"fscache/internal/sim"
	"fscache/internal/trace"
	"fscache/internal/workload"
)

func main() {
	var (
		scheme   = flag.String("scheme", "fs", "partitioning scheme: fs|pf|prism|vantage|cqvp|unmanaged|fullassoc")
		array    = flag.String("array", "setassoc-16", "cache array: setassoc-16|random-16|fullyassoc|directmapped|zcache-z4/52|skew-8")
		rank     = flag.String("rank", "coarse-lru", "futility ranking: coarse-lru|lru|lfu|opt")
		lines    = flag.Int("lines", 65536, "L2 size in 64B lines")
		benches  = flag.String("benchmarks", "gromacs,lbm,lbm,lbm", "comma-separated benchmark per thread")
		targets  = flag.String("targets", "equal", "comma-separated per-thread line targets; 'equal' splits evenly; a trailing 'equal' splits the remainder")
		accesses = flag.Int("accesses", 100000, "L2 accesses per thread")
		l1lines  = flag.Int("l1", 512, "private L1 size in lines (4-way)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		maxsteps = flag.Uint64("maxsteps", 0, "deterministic watchdog: panic after this many simulated accesses (0 = off)")
	)
	prof := profiling.Register()
	flag.Parse()

	names := splitList(*benches)
	if len(names) == 0 {
		fail("no benchmarks given")
	}
	parts := len(names)

	rk, err := parseRank(*rank)
	if err != nil {
		fail(err.Error())
	}

	tg, err := parseTargets(*targets, parts, *lines)
	if err != nil {
		fail(err.Error())
	}

	if err := prof.Start(); err != nil {
		fail(err.Error())
	}
	defer prof.Stop()

	// Build per-thread traces through private L1 filters.
	traces := make([]*trace.Trace, parts)
	for t, name := range names {
		prof, err := workload.ByName(name)
		if err != nil {
			fail(err.Error())
		}
		gen := prof.NewGenerator(*seed, t)
		l1 := sim.NewL1(*l1lines, 4)
		traces[t] = sim.BuildL2Trace(gen, l1, *accesses, 0)
		if rk == futility.OPT {
			traces[t].ComputeNextUse()
		}
	}

	b := experiments.Build(experiments.CacheSpec{
		Lines:  *lines,
		Array:  experiments.ArrayKind(*array),
		Rank:   rk,
		Scheme: experiments.SchemeName(*scheme),
		Parts:  parts,
		Seed:   *seed,
	}, experiments.FSFeedbackParams{})
	b.SetTargets(tg)

	mc := sim.NewMulticore(b.Cache, sim.DefaultTiming(), traces)
	mc.SetStepLimit(*maxsteps)
	results := mc.Run()

	fmt.Printf("scheme=%s array=%s rank=%s lines=%d (%d KB) threads=%d seed=%d\n\n",
		*scheme, *array, rk, *lines, *lines*64/1024, parts, *seed)
	fmt.Printf("%3s %-12s %9s %9s %9s %9s %9s %8s\n",
		"thr", "bench", "target", "occup", "occ/tgt", "IPC", "missrate", "AEF")
	var totalIPC float64
	for t := range results {
		occ := b.Cache.MeanOccupancy(t)
		frac := 0.0
		if tg[t] > 0 {
			frac = occ / float64(tg[t])
		}
		fmt.Printf("%3d %-12s %9d %9.0f %9.3f %9.4f %9.3f %8.3f\n",
			t, names[t], tg[t], occ, frac,
			results[t].IPC(), results[t].MissRate(), b.Cache.Stats(t).AEF())
		totalIPC += results[t].IPC()
	}
	fmt.Printf("\nthroughput (sum IPC): %.4f\n", totalIPC)
	if b.PriSM != nil {
		fmt.Printf("prism abnormality rate: %.3f\n", b.PriSM.AbnormalityRate())
	}
	if b.FSFeedback != nil {
		fmt.Printf("fs scaling factors: %v\n", fmtAlphas(b.FSFeedback.Alphas()))
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseRank(s string) (futility.Kind, error) {
	switch s {
	case "coarse-lru":
		return futility.CoarseLRU, nil
	case "lru":
		return futility.LRU, nil
	case "lfu":
		return futility.LFU, nil
	case "opt":
		return futility.OPT, nil
	}
	return 0, fmt.Errorf("unknown ranking %q", s)
}

// parseTargets interprets the -targets flag: "equal", explicit numbers, or
// explicit numbers with a trailing "equal" that splits the remainder.
func parseTargets(s string, parts, lines int) ([]int, error) {
	items := splitList(s)
	out := make([]int, parts)
	if len(items) == 1 && items[0] == "equal" {
		for i := range out {
			out[i] = lines / parts
		}
		return out, nil
	}
	used, fixed := 0, 0
	equalFrom := -1
	for i, it := range items {
		if it == "equal" {
			if i != len(items)-1 {
				return nil, fmt.Errorf("'equal' must be the last target item")
			}
			equalFrom = i
			break
		}
		v, err := strconv.Atoi(it)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad target %q", it)
		}
		if i >= parts {
			return nil, fmt.Errorf("more targets than threads")
		}
		out[i] = v
		used += v
		fixed++
	}
	if equalFrom >= 0 {
		rest := parts - fixed
		if rest <= 0 {
			return nil, fmt.Errorf("'equal' with no remaining threads")
		}
		share := (lines - used) / rest
		if share < 0 {
			return nil, fmt.Errorf("targets exceed capacity")
		}
		for i := fixed; i < parts; i++ {
			out[i] = share
		}
		return out, nil
	}
	if fixed != parts {
		return nil, fmt.Errorf("have %d targets for %d threads", fixed, parts)
	}
	return out, nil
}

func fmtAlphas(a []float64) string {
	items := make([]string, len(a))
	for i, v := range a {
		items[i] = strconv.FormatFloat(v, 'g', 4, 64)
	}
	return "[" + strings.Join(items, " ") + "]"
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "fsim:", msg)
	os.Exit(2)
}
