// Command fstrace generates and inspects trace files in the repository's
// binary trace format (internal/trace).
//
// Usage:
//
//	fstrace gen -bench mcf -n 100000 -o mcf.fst           # memory references
//	fstrace gen -bench mcf -n 100000 -l2 -o mcf-l2.fst    # L1-filtered L2 trace
//	fstrace info mcf.fst                                  # summary statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"fscache/internal/mrc"
	"fscache/internal/sim"
	"fscache/internal/trace"
	"fscache/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "mrc":
		mrcCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  fstrace gen  -bench <name> -n <accesses> [-l2] [-l1 lines] [-seed s] [-thread t] -o <file>
  fstrace info <file>
  fstrace mrc  <file>     # exact LRU miss-ratio curve (Mattson stack algorithm)

benchmarks: %v
`, workload.Names())
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		bench   = fs.String("bench", "mcf", "benchmark name")
		n       = fs.Int("n", 100000, "number of accesses to produce")
		l2      = fs.Bool("l2", false, "filter through a private L1 (emit the L2 trace)")
		l1lines = fs.Int("l1", 512, "L1 size in lines when -l2 is set")
		seed    = fs.Uint64("seed", 1, "generator seed")
		thread  = fs.Int("thread", 0, "thread id (address-space selector)")
		out     = fs.String("o", "", "output file (required)")
		legacy  = fs.Bool("legacy", false, "write the FST1 format (no CRC footer)")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "fstrace: -o is required")
		os.Exit(2)
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(2)
	}
	gen := prof.NewGenerator(*seed, *thread)
	var tr *trace.Trace
	if *l2 {
		tr = sim.BuildL2Trace(gen, sim.NewL1(*l1lines, 4), *n, 0)
	} else {
		tr = trace.Collect(gen, *n)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	write := tr.WriteTo
	if *legacy {
		write = tr.WriteLegacyTo
	}
	if _, err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d accesses to %s\n", tr.Len(), *out)
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	var tr trace.Trace
	_, version, err := tr.DecodeFrom(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}
	reuse := 0
	seen := make(map[uint64]struct{}, 1<<16)
	writes := 0
	for i := range tr.Accesses {
		a := &tr.Accesses[i]
		if _, ok := seen[a.Addr]; ok {
			reuse++
		} else {
			seen[a.Addr] = struct{}{}
		}
		if a.Kind == trace.Write {
			writes++
		}
	}
	n := tr.Len()
	checksum := "CRC-32 verified"
	if version == 1 {
		checksum = "no checksum"
	}
	fmt.Printf("format:        FST%d (%s)\n", version, checksum)
	fmt.Printf("accesses:      %d\n", n)
	fmt.Printf("instructions:  %d\n", tr.Instructions())
	fmt.Printf("footprint:     %d lines (%d KB)\n", len(seen), len(seen)*64/1024)
	if n > 0 {
		fmt.Printf("reuse frac:    %.3f\n", float64(reuse)/float64(n))
		fmt.Printf("write frac:    %.3f\n", float64(writes)/float64(n))
		fmt.Printf("instr/access:  %.1f\n", float64(tr.Instructions())/float64(n))
	}
}

// mrcCmd prints the trace's exact LRU miss-ratio curve at power-of-two
// cache sizes up to its footprint.
func mrcCmd(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	var tr trace.Trace
	if _, err := tr.ReadFrom(f); err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}
	foot := tr.Footprint()
	depth := 1
	for depth < foot {
		depth <<= 1
	}
	p := mrc.New(depth, 1)
	p.Walk(&tr)
	fmt.Printf("%12s %12s %12s\n", "lines", "size", "missratio")
	for s := 64; s <= depth; s <<= 1 {
		fmt.Printf("%12d %9d KB %12.4f\n", s, s*64/1024, p.MissRatio(s))
	}
	fmt.Printf("footprint: %d lines; cold misses: %d of %d\n",
		foot, p.ColdMisses(), p.Total())
}
