// Command fscheck soaks the differential verification harness: it
// generates random scenarios from sequential seeds, runs each in lockstep
// against the naive oracle (internal/oracle) with invariant audits, and on
// the first divergence prints the failing seed, the shrunk minimal
// reproducer and its hex encoding, then exits non-zero. With zero findings
// it prints throughput statistics and exits 0.
//
// Unlike `go test ./internal/difftest` — a fixed seed range sized for CI —
// fscheck is open-ended: leave it running for hours before a release, or
// point it at a reported seed or hex reproducer to replay a failure.
//
// Examples:
//
//	fscheck                         # 10,000 scenarios from seed 0
//	fscheck -seed 12345 -n 100000   # a different slice of the seed space
//	fscheck -duration 10m           # time-bounded soak, n ignored
//	fscheck -replay 00030f...       # replay one hex-encoded scenario
//	fscheck -selftest               # prove detection via an injected bug
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fscache/internal/difftest"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 0, "first scenario seed")
		n        = flag.Uint64("n", 10000, "number of scenarios to run")
		duration = flag.Duration("duration", 0, "run for this long instead of a fixed count")
		replay   = flag.String("replay", "", "replay one hex-encoded scenario and exit")
		selftest = flag.Bool("selftest", false, "inject an off-by-one into the ranker and require detection")
		verbose  = flag.Bool("v", false, "print every scenario as it runs")
	)
	flag.Parse()

	if *replay != "" {
		s, err := difftest.DecodeHex(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fscheck:", err)
			os.Exit(2)
		}
		fmt.Print(s.Describe())
		if d := difftest.RunScenario(s, difftest.Options{}); d != nil {
			fmt.Println(d)
			os.Exit(1)
		}
		fmt.Println("fscheck: scenario runs in lockstep, no divergence")
		return
	}

	if *selftest {
		runSelftest()
		return
	}

	var opt difftest.Options
	start := time.Now()
	deadline := time.Time{}
	if *duration > 0 {
		deadline = start.Add(*duration)
	}
	ran, accesses := uint64(0), 0
	for s := *seed; ; s++ {
		if deadline.IsZero() {
			if ran >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		sc := difftest.Generate(s)
		if *verbose {
			fmt.Printf("seed %d: %v\n", s, sc)
		}
		if d := difftest.RunScenario(sc, opt); d != nil {
			report(s, sc, d, opt)
			os.Exit(1)
		}
		ran++
		accesses += sc.Accesses()
	}
	el := time.Since(start)
	fmt.Printf("fscheck: %d scenarios (%d accesses) in %v, no divergence (%.0f scenarios/s)\n",
		ran, accesses, el.Round(time.Millisecond), float64(ran)/el.Seconds())
}

// report prints everything needed to reproduce a divergence: the seed, the
// raw divergence, and the shrunk reproducer with its replayable hex form.
func report(seed uint64, s *difftest.Scenario, d *difftest.Divergence, opt difftest.Options) {
	fmt.Printf("fscheck: FAILING SEED %d\n%v\n", seed, d)
	shrunk, sd := difftest.Shrink(s, opt)
	if sd == nil {
		fmt.Println("fscheck: shrinking lost the divergence; original scenario:")
		fmt.Print(s.Describe())
		fmt.Printf("replay: fscheck -replay %s\n", difftest.EncodeHex(s))
		return
	}
	fmt.Printf("shrunk to %d ops (%d accesses): %v\n", len(shrunk.Ops), shrunk.Accesses(), sd)
	fmt.Print(shrunk.Describe())
	fmt.Printf("replay: fscheck -replay %s\n", difftest.EncodeHex(shrunk))
}

// runSelftest proves the harness detects real defects: with an off-by-one
// injected into the decision ranker, a seed sweep must diverge quickly.
func runSelftest() {
	opt := difftest.Options{WrapRanker: difftest.MutateOffByOne}
	for s := uint64(0); s < 1000; s++ {
		sc := difftest.Generate(s)
		if d := difftest.RunScenario(sc, opt); d != nil {
			fmt.Printf("fscheck: selftest ok — injected off-by-one caught at seed %d: %v\n", s, d)
			shrunk, sd := difftest.Shrink(sc, opt)
			if sd != nil {
				fmt.Printf("shrunk to %d ops (%d accesses)\n%s", len(shrunk.Ops), shrunk.Accesses(), shrunk.Describe())
			}
			return
		}
	}
	fmt.Fprintln(os.Stderr, "fscheck: selftest FAILED — injected bug not detected in 1000 scenarios")
	os.Exit(1)
}
