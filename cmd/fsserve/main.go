// Command fsserve runs the overload-resilient multi-tenant cache service
// (internal/server): a length-prefixed TCP key-value front end where each
// tenant maps to one futility-scaling partition of a sharded engine.
//
// Tenants are declared with -tenants as comma-separated class[:rate[:burst]]
// specs, where class is "g" (guaranteed) or "b" (best-effort), rate is the
// token-bucket refill in requests/second (0 = unlimited) and burst is the
// bucket depth. The engine's line capacity is split evenly across tenants
// unless -targets overrides it.
//
// On SIGINT/SIGTERM the server drains: it stops accepting, lets in-flight
// requests finish and their responses flush, and force-closes stragglers
// only after -draintimeout. Exit status is 0 on a clean drain, 1 otherwise.
//
// -faults wraps the listener with a seeded network fault injector
// (connection resets, torn frames, corrupted length prefixes) so soak
// harnesses can prove the serving stack survives wire damage on its own
// responses; see internal/faultinject.
//
// With -scenario, the tenant topology comes from a declarative scenario
// spec (internal/scenario) instead of -tenants/-targets/-lines/-ways: one
// tenant per compiled client (replicated clients expand), SLO class from
// the client's class field, line targets from the spec's shares, cache
// geometry from its cache block. The same spec then drives matched load
// via fsload -scenario or the offline fstables -scenario comparison.
//
// With -alloc, the static split only seeds the engine: every request's
// engine access feeds the online allocator (internal/alloc) and its epoch
// targets are installed by the rebalancer tick, so tenant capacity follows
// the measured miss-ratio curves instead of the configured shares. The
// drain summary and the OpStats payload report the install count.
//
// Examples:
//
//	fsserve -addr 127.0.0.1:7070
//	fsserve -tenants g:5000,b:2000,b:0 -lines 16384 -rebalance 250ms
//	fsserve -scenario examples/scenarios/mixed-tenants.yaml
//	fsserve -addr 127.0.0.1:0 -addrfile /tmp/fsserve.addr   # CI smoke
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fscache/internal/alloc"
	"fscache/internal/faultinject"
	"fscache/internal/futility"
	"fscache/internal/scenario"
	"fscache/internal/server"
	"fscache/internal/shardcache"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "TCP listen address (port 0 picks a free port)")
		addrfile  = flag.String("addrfile", "", "write the bound address to this file once listening (for scripts)")
		tenants   = flag.String("tenants", "g,b", "tenant specs: class[:rate[:burst]], class g|b, comma-separated")
		targets   = flag.String("targets", "", "per-tenant line targets, comma-separated (default: even split)")
		lines     = flag.Int("lines", 4096, "total cache lines (power of two)")
		ways      = flag.Int("ways", 16, "associativity (power of two)")
		shards    = flag.Int("shards", 4, "engine shard count (power of two)")
		stripes   = flag.Int("stripes", 4, "lock stripes per shard (power of two)")
		seed      = flag.Uint64("seed", 1, "engine seed (hash functions, replacement sampling)")
		rebalance = flag.Duration("rebalance", 250*time.Millisecond, "target-redistribution cadence (0 disables)")
		soft      = flag.Int("soft", 256, "soft in-flight watermark (shed/degrade threshold)")
		hard      = flag.Int("hard", 0, "hard in-flight watermark (reject threshold; default 4x soft)")
		drainT    = flag.Duration("draintimeout", 10*time.Second, "drain grace before force-closing connections")
		faults    = flag.Bool("faults", false, "wrap the listener with the seeded network fault injector")
		faultseed = flag.Uint64("faultseed", 2026, "fault injector seed")
		quiet     = flag.Bool("quiet", false, "suppress operational logging")
		scen      = flag.String("scenario", "", "derive tenants, targets and cache geometry from this scenario spec file (overrides -tenants/-targets/-lines/-ways)")
		allocFl   = flag.String("alloc", "", "drive targets with the online allocator under this objective (utility|maxmin|phase; plus qos with -scenario) instead of the static split")
	)
	flag.Parse()

	tcs, err := parseTenants(*tenants)
	if err != nil {
		fail(err.Error())
	}
	var tgt []int
	if *targets != "" {
		if tgt, err = parseInts(*targets); err != nil {
			fail(err.Error())
		}
	}
	var comp *scenario.Compiled
	if *scen != "" {
		if comp, tcs, tgt, err = scenarioTopology(*scen, lines, ways); err != nil {
			fail(err.Error())
		}
	}
	cfg := server.Config{
		Addr:         *addr,
		Tenants:      tcs,
		Targets:      tgt,
		SoftInflight: *soft,
		HardInflight: *hard,
		Rebalance:    *rebalance,
		Cache: shardcache.Config{
			Lines:   *lines,
			Ways:    *ways,
			Shards:  *shards,
			Stripes: *stripes,
			Parts:   len(tcs),
			Ranking: futility.CoarseLRU,
			Seed:    *seed,
		},
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *allocFl != "" {
		a, err := buildAllocator(*allocFl, comp, tcs, tgt, *lines, *seed)
		if err != nil {
			fail(err.Error())
		}
		if *rebalance <= 0 {
			fail("-alloc needs -rebalance > 0: the rebalancer tick is what installs the allocator's targets")
		}
		cfg.TargetSource = a
		cfg.Observe = a.Observe
		fmt.Fprintf(os.Stderr, "fsserve: online %s allocation armed (epoch targets install on the %v rebalance tick)\n", *allocFl, *rebalance)
	}
	srv, err := server.New(cfg)
	if err != nil {
		fail(err.Error())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(fmt.Sprintf("listen %s: %v", *addr, err))
	}
	if *faults {
		ni := faultinject.NewNetInjector(*faultseed, faultinject.NetFaults{
			Reset:      0.002,
			TornWrite:  0.002,
			CorruptLen: 0.002,
		})
		ln = ni.WrapListener(ln)
		fmt.Fprintf(os.Stderr, "fsserve: network fault injection armed (seed %d)\n", *faultseed)
	}
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fail(fmt.Sprintf("write addrfile: %v", err))
		}
	}
	srv.Serve(ln)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "fsserve: %v, draining\n", sig)
	drainErr := srv.Shutdown(*drainT)

	snap := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"fsserve: served %d conn(s), %d store entries (%d bytes), %d bad frames, %d slow clients, %d panics\n",
		snap.Accepted, snap.StoreEntries, snap.StoreBytes, snap.BadFrames, snap.SlowClients, snap.Panics)
	if *allocFl != "" {
		fmt.Fprintf(os.Stderr, "fsserve: alloc %s: %d target installs over %d rebalances\n",
			*allocFl, snap.TargetInstalls, snap.Rebalances)
	}
	for i, t := range snap.Tenants {
		fmt.Fprintf(os.Stderr,
			"fsserve: tenant %d (%s): admitted %d, shed %d, stale %d, rejected %d, deadlined %d\n",
			i, t.Class, t.Admitted, t.Shed, t.StaleServes, t.Rejected, t.Deadlined)
	}
	if drainErr != nil {
		fail(drainErr.Error())
	}
}

// scenarioTopology compiles a scenario spec into the server's tenant
// topology: one tenant per compiled client (replicated clients expand),
// class from the client's class field, line targets from the spec's shares
// over the initially-live set, cache geometry from the spec's cache block
// (written through lines/ways).
func scenarioTopology(path string, lines, ways *int) (*scenario.Compiled, []server.TenantConfig, []int, error) {
	ls, err := scenario.LoadSpec(path)
	if err != nil {
		return nil, nil, nil, err
	}
	comp, err := scenario.Compile(ls.Spec, ls.Dir)
	if err != nil {
		return nil, nil, nil, err
	}
	*lines = ls.Spec.Cache.Lines
	*ways = ls.Spec.Cache.Ways
	tcs := make([]server.TenantConfig, len(comp.Clients))
	for i, cl := range comp.Clients {
		tcs[i].Class = server.Guaranteed
		if cl.Class == "b" {
			tcs[i].Class = server.BestEffort
		}
	}
	return comp, tcs, comp.Targets(*lines, comp.InitialLive()), nil
}

// buildAllocator constructs the online allocator behind -alloc. Scenario
// servers take the spec-derived configuration (objective, floors, epoch
// length); flag-configured servers use the alloc package defaults over the
// flag geometry, seeded from the static split so the first epoch matches
// what the engine starts with.
func buildAllocator(objective string, comp *scenario.Compiled, tcs []server.TenantConfig, tgt []int, lines int, seed uint64) (*alloc.Allocator, error) {
	if comp != nil {
		cfg, err := comp.AllocConfig(objective)
		if err != nil {
			return nil, err
		}
		return alloc.New(cfg), nil
	}
	obj, err := alloc.ByName(objective)
	if err != nil {
		return nil, err
	}
	if tgt != nil && len(tgt) != len(tcs) {
		return nil, fmt.Errorf("-targets has %d entries for %d tenants", len(tgt), len(tcs))
	}
	return alloc.New(alloc.Config{
		Parts:     len(tcs),
		Lines:     lines,
		Objective: obj,
		Initial:   append([]int(nil), tgt...),
		Seed:      seed,
	}), nil
}

// parseTenants parses "g:5000,b:2000:300,b" into tenant configs.
func parseTenants(spec string) ([]server.TenantConfig, error) {
	var out []server.TenantConfig
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("bad tenant spec %q (want class[:rate[:burst]])", field)
		}
		var tc server.TenantConfig
		switch parts[0] {
		case "g":
			tc.Class = server.Guaranteed
		case "b":
			tc.Class = server.BestEffort
		default:
			return nil, fmt.Errorf("bad tenant class %q (want g or b)", parts[0])
		}
		if len(parts) > 1 {
			rate, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || rate < 0 {
				return nil, fmt.Errorf("bad tenant rate %q", parts[1])
			}
			tc.Rate = rate
		}
		if len(parts) > 2 {
			burst, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || burst < 0 {
				return nil, fmt.Errorf("bad tenant burst %q", parts[2])
			}
			tc.Burst = burst
		}
		out = append(out, tc)
	}
	return out, nil
}

func parseInts(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad target %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "fsserve:", msg)
	os.Exit(1)
}
