// Command fsbench runs the internal/perfbench registry standalone and emits
// a machine-readable BENCH_<date>.json report: ns/op, B/op, allocs/op and —
// for per-access benchmarks — accesses/sec for every hot path in the
// replacement pipeline. CI runs it as a smoke test and archives the JSON so
// the repo carries its performance trajectory alongside its correctness
// suite; the committed BENCH_*.json files are refreshed whenever a PR is
// expected to move the numbers (see DESIGN.md §10).
//
// Examples:
//
//	fsbench                        # full run, writes BENCH_<today>.json
//	fsbench -quick                 # short benchtime for CI smoke
//	fsbench -list                  # print the registry and exit
//	fsbench -run 'core/'           # only benchmarks whose name contains core/
//	fsbench -compare BENCH_old.json  # advisory delta report (never fails)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"fscache/internal/perfbench"
)

// Report is the BENCH_<date>.json schema.
type Report struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Doc         string  `json:"doc"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// AccessesPerSec is 1e9/NsPerOp for benchmarks whose op is one cache
	// access, 0 otherwise.
	AccessesPerSec float64 `json:"accesses_per_sec,omitempty"`
	// ZeroAllocContract marks benchmarks bound by the steady-state
	// zero-allocation contract (DESIGN.md §10).
	ZeroAllocContract bool `json:"zero_alloc_contract,omitempty"`
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "short benchtime (20ms) for CI smoke runs")
		list    = flag.Bool("list", false, "list registered benchmarks and exit")
		run     = flag.String("run", "", "only run benchmarks whose name contains this substring")
		out     = flag.String("out", "", "output JSON path (default BENCH_<date>.json)")
		compare = flag.String("compare", "", "prior BENCH_*.json to diff against (advisory; never affects exit status)")
		btime   = flag.String("benchtime", "", "explicit test.benchtime value (overrides -quick)")
	)
	flag.Parse()

	if *list {
		for _, b := range perfbench.Registry() {
			fmt.Printf("%-24s %s\n", b.Name, b.Doc)
		}
		return
	}

	bt := "1s"
	if *quick {
		bt = "20ms"
	}
	if *btime != "" {
		bt = *btime
	}
	// testing.Benchmark honours the test.benchtime flag; testing.Init
	// registers it outside a test binary.
	testing.Init()
	if err := flag.Set("test.benchtime", bt); err != nil {
		fail(err.Error())
	}

	rep := Report{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: bt,
	}

	for _, b := range perfbench.Registry() {
		if *run != "" && !strings.Contains(b.Name, *run) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-24s ", b.Name)
		r := testing.Benchmark(b.Fn)
		res := Result{
			Name:              b.Name,
			Doc:               b.Doc,
			N:                 r.N,
			NsPerOp:           float64(r.T.Nanoseconds()) / float64(r.N),
			BPerOp:            r.AllocedBytesPerOp(),
			AllocsPerOp:       r.AllocsPerOp(),
			ZeroAllocContract: b.ZeroAlloc,
		}
		if b.PerAccess && res.NsPerOp > 0 {
			res.AccessesPerSec = 1e9 / res.NsPerOp
		}
		fmt.Fprintf(os.Stderr, "%12.1f ns/op %6d B/op %4d allocs/op\n",
			res.NsPerOp, res.BPerOp, res.AllocsPerOp)
		if b.ZeroAlloc && res.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "fsbench: WARNING: %s reports %d allocs/op against a zero-allocation contract\n",
				b.Name, res.AllocsPerOp)
		}
		rep.Results = append(rep.Results, res)
	}
	if len(rep.Results) == 0 {
		fail("no benchmarks matched -run " + *run)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err.Error())
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err.Error())
	}
	fmt.Fprintf(os.Stderr, "fsbench: wrote %s\n", path)

	if *compare != "" {
		compareReports(*compare, rep)
	}
}

// compareReports prints an advisory per-benchmark delta against a prior
// report. It deliberately never exits non-zero: shared CI runners make
// ns/op too noisy to gate on, so regressions are surfaced, not enforced.
func compareReports(path string, cur Report) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsbench: compare: %v (skipping)\n", err)
		return
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "fsbench: compare: %s: %v (skipping)\n", path, err)
		return
	}
	base := map[string]Result{}
	for _, r := range old.Results {
		base[r.Name] = r
	}
	fmt.Printf("\ncomparison vs %s (%s), advisory only:\n", path, old.Date)
	fmt.Printf("%-24s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range cur.Results {
		o, ok := base[r.Name]
		if !ok || o.N == 0 {
			fmt.Printf("%-24s %12s %12.1f %8s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		delta := (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		mark := ""
		if delta > 10 {
			mark = "  << regression?"
		} else if delta < -10 {
			mark = "  << improvement"
		}
		fmt.Printf("%-24s %12.1f %12.1f %+7.1f%%%s\n", r.Name, o.NsPerOp, r.NsPerOp, delta, mark)
		if r.AllocsPerOp > o.AllocsPerOp {
			fmt.Printf("%-24s allocs/op grew %d -> %d\n", "", o.AllocsPerOp, r.AllocsPerOp)
		}
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "fsbench:", msg)
	os.Exit(2)
}
