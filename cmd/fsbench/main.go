// Command fsbench runs the internal/perfbench registry standalone and emits
// a machine-readable BENCH_<date>.json report: ns/op, B/op, allocs/op and —
// for per-access benchmarks — accesses/sec for every hot path in the
// replacement pipeline. Parallel benchmarks (the GOMAXPROCS scaling rows)
// are swept across the -procs settings, one result row per setting, so the
// report carries the ops/s-vs-GOMAXPROCS curve. CI runs it with -gate and
// archives the JSON so the repo carries its performance trajectory alongside
// its correctness suite; the committed BENCH_*.json files are refreshed
// whenever a PR is expected to move the numbers (see DESIGN.md §10, §15).
//
// Gating (-gate) enforces three ratchets and exits 1 on violation:
//
//   - allocs/op against a zero-allocation contract, and allocs/op growth
//     against the -compare baseline: gated unconditionally — allocation
//     counts are deterministic, so there is no noise excuse.
//   - ns/op against the baseline: gated only when the baseline was captured
//     on a matching environment (num_cpu, goos, goarch), within each
//     benchmark's tolerance band. On a foreign environment ns/op deltas are
//     advisory.
//   - scaling efficiency, within the current run: a parallel benchmark's
//     throughput at the top -procs setting P must be at least
//     MinScale × min(P, NumCPU) × its 1-proc throughput. min(P, NumCPU)
//     keeps the bound honest on machines with fewer cores than the sweep.
//
// -compare refuses (exit 2) to diff runs whose parallel rows were captured
// at different -procs settings: a 4-proc figure against an 8-proc figure is
// not a regression signal, it is a category error.
//
// Examples:
//
//	fsbench                                  # full run, writes BENCH_<today>.json
//	fsbench -quick                           # short benchtime for CI smoke
//	fsbench -list                            # print the registry and exit
//	fsbench -run 'core/'                     # only benchmarks matching core/
//	fsbench -procs 1,2,4,8,16                # sweep parallel rows across GOMAXPROCS
//	fsbench -compare BENCH_old.json          # advisory delta report
//	fsbench -benchtime 100ms -count 3 -procs 1,2,4,8,16 \
//	        -compare BENCH_old.json -gate    # CI ratchet (make bench-gate)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"fscache/internal/perfbench"
)

// Report is the BENCH_<date>.json schema.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the setting fsbench launched with; individual parallel
	// results record the setting they ran at in Result.Procs.
	GoMaxProcs int      `json:"gomaxprocs"`
	Benchtime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
}

// Result is one benchmark's measurement at one GOMAXPROCS setting.
type Result struct {
	Name        string  `json:"name"`
	Doc         string  `json:"doc"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Procs is the GOMAXPROCS the result was captured at. Comparisons only
	// pair results with equal Procs.
	Procs int `json:"procs"`
	// Parallel marks GOMAXPROCS-swept rows (perfbench.Benchmark.Parallel).
	Parallel bool `json:"parallel,omitempty"`
	// AccessesPerSec is 1e9/NsPerOp for benchmarks whose op is one cache
	// access, 0 otherwise.
	AccessesPerSec float64 `json:"accesses_per_sec,omitempty"`
	// ZeroAllocContract marks benchmarks bound by the steady-state
	// zero-allocation contract (DESIGN.md §10).
	ZeroAllocContract bool `json:"zero_alloc_contract,omitempty"`
}

// defaultTol is the ns/op tolerance band used when a benchmark does not
// declare its own: generous because even same-machine runs share the CPU
// with the rest of CI.
const defaultTol = 0.35

// nsSlack is an absolute addition to every ns/op band. Single-digit-ns
// benchmarks (the coarse ranker ticks) can swing 2x on timer granularity
// and frequency scaling alone, where a purely relative band would flag
// noise as regression; 15 ns is irrelevant to the microsecond-scale rows
// and exactly the protection the nanosecond-scale ones need.
const nsSlack = 15.0

func main() {
	var (
		quick   = flag.Bool("quick", false, "short benchtime (20ms) for CI smoke runs")
		list    = flag.Bool("list", false, "list registered benchmarks and exit")
		run     = flag.String("run", "", "only run benchmarks whose name contains this substring")
		out     = flag.String("out", "", "output JSON path (default BENCH_<date>.json)")
		compare = flag.String("compare", "", "prior BENCH_*.json to diff against")
		gate    = flag.Bool("gate", false, "fail (exit 1) on contract, tolerance-band or scaling violations")
		count   = flag.Int("count", 1, "samples per benchmark; ns/op is the minimum (noise-robust), contracts check every sample")
		procsF  = flag.String("procs", "", "comma-separated GOMAXPROCS sweep for parallel benchmarks, e.g. 1,2,4,8,16")
		btime   = flag.String("benchtime", "", "explicit test.benchtime value (overrides -quick)")
	)
	flag.Parse()

	if *list {
		for _, b := range perfbench.Registry() {
			tag := ""
			if b.Parallel {
				tag = "  [parallel]"
			}
			fmt.Printf("%-32s %s%s\n", b.Name, b.Doc, tag)
		}
		return
	}

	procs, err := parseProcs(*procsF)
	if err != nil {
		fail(err.Error())
	}

	bt := "1s"
	if *quick {
		bt = "20ms"
	}
	if *btime != "" {
		bt = *btime
	}
	// testing.Benchmark honours the test.benchtime flag; testing.Init
	// registers it outside a test binary.
	testing.Init()
	if err := flag.Set("test.benchtime", bt); err != nil {
		fail(err.Error())
	}

	launchProcs := runtime.GOMAXPROCS(0)
	rep := Report{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: launchProcs,
		Benchtime:  bt,
	}

	var violations []string
	for _, b := range perfbench.Registry() {
		if *run != "" && !strings.Contains(b.Name, *run) {
			continue
		}
		sweep := []int{launchProcs}
		if b.Parallel && len(procs) > 0 {
			sweep = procs
		}
		for _, p := range sweep {
			if p != runtime.GOMAXPROCS(0) {
				runtime.GOMAXPROCS(p)
			}
			fmt.Fprintf(os.Stderr, "running %-34s ", label(b.Name, b.Parallel, p))
			// Min-of-count: on a shared machine the minimum is the sample
			// least polluted by neighbours, so it is what the tolerance
			// bands compare. Allocation contracts are deterministic and
			// check on every sample.
			r := testing.Benchmark(b.Fn)
			for s := 1; s < *count; s++ {
				if b.ZeroAlloc && r.AllocsPerOp() != 0 {
					break // already in violation; no need for more samples
				}
				r2 := testing.Benchmark(b.Fn)
				if float64(r2.T.Nanoseconds())/float64(r2.N) <
					float64(r.T.Nanoseconds())/float64(r.N) {
					r = r2
				} else if b.ZeroAlloc && r2.AllocsPerOp() != 0 {
					r = r2
				}
			}
			res := Result{
				Name:              b.Name,
				Doc:               b.Doc,
				N:                 r.N,
				NsPerOp:           float64(r.T.Nanoseconds()) / float64(r.N),
				BPerOp:            r.AllocedBytesPerOp(),
				AllocsPerOp:       r.AllocsPerOp(),
				Procs:             p,
				Parallel:          b.Parallel,
				ZeroAllocContract: b.ZeroAlloc,
			}
			if b.PerAccess && res.NsPerOp > 0 {
				res.AccessesPerSec = 1e9 / res.NsPerOp
			}
			fmt.Fprintf(os.Stderr, "%12.1f ns/op %6d B/op %4d allocs/op\n",
				res.NsPerOp, res.BPerOp, res.AllocsPerOp)
			if b.ZeroAlloc && res.AllocsPerOp != 0 {
				violations = append(violations, fmt.Sprintf(
					"%s reports %d allocs/op against a zero-allocation contract",
					b.Name, res.AllocsPerOp))
			}
			rep.Results = append(rep.Results, res)
		}
	}
	runtime.GOMAXPROCS(launchProcs)
	if len(rep.Results) == 0 {
		fail("no benchmarks matched -run " + *run)
	}

	violations = append(violations, checkScaling(rep)...)

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err.Error())
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err.Error())
	}
	fmt.Fprintf(os.Stderr, "fsbench: wrote %s\n", path)

	if *compare != "" {
		violations = append(violations, compareReports(*compare, rep)...)
	}

	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "fsbench: VIOLATION: %s\n", v)
	}
	if len(violations) > 0 && *gate {
		fmt.Fprintf(os.Stderr, "fsbench: %d gated violation(s)\n", len(violations))
		os.Exit(1)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "fsbench: %d violation(s), advisory without -gate\n", len(violations))
	}
}

func label(name string, parallel bool, procs int) string {
	if !parallel {
		return name
	}
	return name + "@p" + strconv.Itoa(procs)
}

// parseProcs parses a comma-separated GOMAXPROCS sweep list.
func parseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("-procs: bad entry %q", f)
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out, nil
}

// checkScaling enforces the within-run scaling-efficiency bands: for every
// parallel benchmark with a MinScale and results at more than one setting,
// throughput at the top setting P must be at least
// MinScale × min(P, NumCPU) × the 1-proc throughput. The factor
// min(P, NumCPU) is what makes the band honest: on an 8-core runner the
// get-heavy band (0.375) demands the acceptance ≥3× at P=8, while a 1-CPU
// runner — where parallel speedup is physically impossible — only demands
// that striping not cost more than the band itself.
func checkScaling(rep Report) []string {
	byName := map[string]map[int]Result{}
	for _, r := range rep.Results {
		if !r.Parallel {
			continue
		}
		if byName[r.Name] == nil {
			byName[r.Name] = map[int]Result{}
		}
		byName[r.Name][r.Procs] = r
	}
	var out []string
	for _, b := range perfbench.Registry() {
		if !b.Parallel || b.MinScale <= 0 {
			continue
		}
		rows := byName[b.Name]
		base, haveBase := rows[1]
		if !haveBase || len(rows) < 2 {
			continue // no sweep: nothing to gate
		}
		top := 0
		for p := range rows {
			if p > top {
				top = p
			}
		}
		effCores := top
		if rep.NumCPU < effCores {
			effCores = rep.NumCPU
		}
		got := rows[top].AccessesPerSec / base.AccessesPerSec
		want := b.MinScale * float64(effCores)
		status := "ok"
		if got < want {
			status = "FAIL"
			out = append(out, fmt.Sprintf(
				"%s: throughput scaling %.2fx at procs=%d, want >= %.2fx (MinScale %.3f x min(%d, %d cpus))",
				b.Name, got, top, want, b.MinScale, top, rep.NumCPU))
		}
		fmt.Fprintf(os.Stderr, "scaling %-32s %5.2fx at p%d (band >= %.2fx) %s\n",
			b.Name, got, top, want, status)
	}
	return out
}

// compareReports diffs the current run against a prior report and returns
// gated violations: allocs/op growth always, ns/op band breaches only when
// the baseline environment matches. Results pair by (name, procs); if a
// benchmark present in both runs was swept at different -procs settings the
// comparison refuses outright (exit 2) — cross-parallelism deltas are
// meaningless, and silently diffing them would launder a category error
// into a pass or a spurious failure.
func compareReports(path string, cur Report) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(fmt.Sprintf("compare: %v", err))
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		fail(fmt.Sprintf("compare: %s: %v", path, err))
	}

	oldProcs := procsSets(old)
	for name, curSet := range procsSets(cur) {
		if oldSet, ok := oldProcs[name]; ok && oldSet != curSet {
			fail(fmt.Sprintf(
				"compare: %s was captured at procs [%s] in %s but [%s] in this run; re-run with matching -procs instead of comparing across parallelism",
				name, oldSet, path, curSet))
		}
	}

	envMatched := old.NumCPU == cur.NumCPU && old.GOOS == cur.GOOS && old.GOARCH == cur.GOARCH
	base := map[string]Result{}
	for _, r := range old.Results {
		base[label(r.Name, r.Parallel, r.Procs)] = r
	}

	mode := "ns/op bands enforced (matching environment)"
	if !envMatched {
		mode = fmt.Sprintf("ns/op advisory only (environment differs: %d cpu %s/%s vs %d cpu %s/%s)",
			old.NumCPU, old.GOOS, old.GOARCH, cur.NumCPU, cur.GOOS, cur.GOARCH)
	}
	fmt.Printf("\ncomparison vs %s (%s): allocs gated, %s\n", path, old.Date, mode)
	fmt.Printf("%-34s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")

	var out []string
	for _, r := range cur.Results {
		key := label(r.Name, r.Parallel, r.Procs)
		o, ok := base[key]
		if !ok || o.N == 0 {
			fmt.Printf("%-34s %12s %12.1f %8s\n", key, "-", r.NsPerOp, "new")
			continue
		}
		tol := defaultTol
		if b, ok := perfbench.ByName(r.Name); ok && b.Tol > 0 {
			tol = b.Tol
		}
		delta := (r.NsPerOp - o.NsPerOp) / o.NsPerOp
		overBand := r.NsPerOp > o.NsPerOp*(1+tol)+nsSlack
		mark := ""
		switch {
		case envMatched && overBand:
			mark = "  << over band"
			out = append(out, fmt.Sprintf("%s: ns/op %.1f vs %.1f in %s, band +%.0f%%+%.0fns",
				key, r.NsPerOp, o.NsPerOp, path, tol*100, nsSlack))
		case delta < -tol:
			mark = "  << improvement; consider refreshing the baseline"
		case overBand:
			mark = "  << regression? (advisory: foreign environment)"
		}
		fmt.Printf("%-34s %12.1f %12.1f %+7.1f%%%s\n", key, o.NsPerOp, r.NsPerOp, delta*100, mark)
		if r.AllocsPerOp > o.AllocsPerOp {
			out = append(out, fmt.Sprintf("%s: allocs/op grew %d -> %d vs %s",
				key, o.AllocsPerOp, r.AllocsPerOp, path))
		}
	}
	return out
}

// procsSets maps each parallel benchmark name to the sorted set of procs
// settings it was captured at, rendered as a string for direct comparison.
func procsSets(rep Report) map[string]string {
	byName := map[string][]int{}
	for _, r := range rep.Results {
		if r.Parallel {
			byName[r.Name] = append(byName[r.Name], r.Procs)
		}
	}
	out := map[string]string{}
	for name, ps := range byName {
		sort.Ints(ps)
		parts := make([]string, len(ps))
		for i, p := range ps {
			parts[i] = strconv.Itoa(p)
		}
		out[name] = strings.Join(parts, ",")
	}
	return out
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "fsbench:", msg)
	os.Exit(2)
}
